package staticshare

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"structlayout/internal/concurrency"
	"structlayout/internal/diag"
	"structlayout/internal/ir"
	"structlayout/internal/irtext"
	"structlayout/internal/layout"
	"structlayout/internal/locks"
)

// Lint finding codes, stable for machine matching and golden tests.
const (
	// CodeFalseSharing: a statically-certain write-shared field pair that
	// the layout keeps on one cache line.
	CodeFalseSharing = "static-false-sharing"
	// CodeLockImbalance: a procedure acquires and releases asymmetrically
	// on some path.
	CodeLockImbalance = "lock-imbalance"
	// CodePerThreadLock: shared-instance data written under locks the
	// threads acquire on distinct instances — the locks serialize
	// nothing.
	CodePerThreadLock = "perthread-lock-shared-data"
	// CodeLockAnalysisFailed: the lock analysis degraded; exclusion facts
	// are conservatively absent.
	CodeLockAnalysisFailed = "lock-analysis-failed"
	// CodeExclusiveCC: sampled CC mass on block pairs the MHP relation
	// proves exclusive — a measurement-quality contradiction.
	CodeExclusiveCC = "mhp-exclusive-cc"
	// CodeLintSkipped: an input (a *.slp file in a -lint-dir tree, a Go
	// package in a -go-lint run) could not be read, parsed or analyzed;
	// it was skipped and the rest of the run still linted.
	CodeLintSkipped = "lint-skipped"
)

// Finding is one ranked linter diagnostic.
type Finding struct {
	Severity diag.Severity `json:"-"`
	Code     string        `json:"code"`
	Struct   string        `json:"struct,omitempty"`
	Fields   []string      `json:"fields,omitempty"`
	// Weight ranks findings of equal severity (static co-execution
	// frequency, CC mass, ...).
	Weight  float64 `json:"weight"`
	Message string  `json:"message"`
}

// MarshalJSON renders the severity as its string form.
func (f Finding) MarshalJSON() ([]byte, error) {
	type alias Finding
	return json.Marshal(struct {
		Severity string `json:"severity"`
		alias
	}{Severity: f.Severity.String(), alias: alias(f)})
}

// Lint runs every static check against the given layouts (keyed by struct
// name; structs without an entry are checked against their declaration
// order at the analysis line size — pass nil to skip co-location checks
// entirely). Findings come back ranked: severity first, then weight.
func (r *Result) Lint(layouts map[string]*layout.Layout) []Finding {
	var out []Finding
	out = append(out, r.lintFalseSharing(layouts)...)
	out = append(out, r.lintLockImbalance()...)
	out = append(out, r.lintPerThreadLocks()...)
	rankFindings(out)
	return out
}

// lintFalseSharing flags statically-certain write-shared pairs the layout
// co-locates.
func (r *Result) lintFalseSharing(layouts map[string]*layout.Layout) []Finding {
	var out []Finding
	names := make([]string, 0, len(r.Pairs))
	for name := range r.Pairs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		lay := layouts[name]
		if lay == nil {
			continue
		}
		st := r.Prog.Struct(name)
		if st == nil {
			continue
		}
		pairs := r.Pairs[name]
		keys := make([][2]int, 0, len(pairs))
		for k := range pairs {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			info := pairs[k]
			if info.Class != WriteShared || !info.Certain {
				continue
			}
			if k[0] >= len(st.Fields) || k[1] >= len(st.Fields) || k[0] >= len(lay.Offsets) || k[1] >= len(lay.Offsets) {
				continue
			}
			if !lay.SameLine(k[0], k[1]) {
				continue
			}
			f1, f2 := st.Fields[k[0]].Name, st.Fields[k[1]].Name
			out = append(out, Finding{
				Severity: diag.Warning,
				Code:     CodeFalseSharing,
				Struct:   name,
				Fields:   []string{f1, f2},
				Weight:   info.Weight,
				Message: fmt.Sprintf("struct %s: fields %s and %s are write-shared across threads (statically certain) but layout %q co-locates them on cache line %d",
					name, f1, f2, lay.Name, lay.LineOf(k[0])),
			})
		}
	}
	return out
}

// lintLockImbalance flags procedures whose lock discipline is unbalanced
// on some path, plus a degraded finding when the lock analysis failed
// outright.
func (r *Result) lintLockImbalance() []Finding {
	var out []Finding
	if r.LocksErr != nil {
		out = append(out, Finding{
			Severity: diag.Degraded,
			Code:     CodeLockAnalysisFailed,
			Message:  fmt.Sprintf("lock analysis degraded, exclusion facts unavailable: %v", r.LocksErr),
		})
		return out
	}
	if r.Locks == nil {
		return out
	}
	for _, pr := range r.Prog.Procs {
		if r.Locks.Balanced(pr.Name) {
			continue
		}
		out = append(out, Finding{
			Severity: diag.Warning,
			Code:     CodeLockImbalance,
			Weight:   r.procFreq[pr.Name],
			Message:  fmt.Sprintf("procedure %s acquires and releases locks asymmetrically on some path; held sets were conservatively dropped", pr.Name),
		})
	}
	return out
}

// lintPerThreadLocks flags fields written to a provably shared instance
// while every "protecting" lock resolves to distinct instances across the
// conflicting threads: the classic bug of guarding shared data with a
// per-thread (or per-object) lock. The lockedButShared verdict depends
// only on the two accesses' conflict keys (instance expression, reaching
// threads, held set), so it is derived once per same-field signature
// pair instead of once per access pair; the weight accumulation then
// replays per access in the original order, keeping output identical to
// the old O(accesses²) walk.
func (r *Result) lintPerThreadLocks() []Finding {
	type key struct {
		structName string
		field      int
		lock       string
	}
	agg := make(map[key]float64)
	names := make([]string, 0, len(r.byStruct))
	for name := range r.byStruct {
		names = append(names, name)
	}
	sort.Strings(names)
	var keys []key
	for _, name := range names {
		idxs := r.byStruct[name]
		// Group the struct's accesses by (field, conflictKey).
		type gkey struct {
			field int
			ck    conflictKey
		}
		gid := make(map[gkey]int)
		gidOf := make([]int, len(idxs))
		var reps []*Access
		var gkeys []gkey
		for x, ai := range idxs {
			a := &r.Accesses[ai]
			k := gkey{a.Field, conflictKey{a.Inst, threadsKey(a.Threads), heldKeyEnc(a.Held), a.segKey}}
			id, ok := gid[k]
			if !ok {
				id = len(reps)
				gid[k] = id
				reps = append(reps, a)
				gkeys = append(gkeys, k)
			}
			gidOf[x] = id
		}
		// One verdict per same-field group pair (self-pairs included:
		// two threads can race through the same instruction).
		verdicts := make(map[[2]conflictKey]bool)
		matched := make([]bool, len(reps))
		for i := range reps {
			for j := range reps {
				if gkeys[i].field != gkeys[j].field || matched[i] {
					continue
				}
				k1, k2 := gkeys[i].ck, gkeys[j].ck
				if k2.less(k1) {
					k1, k2 = k2, k1
				}
				mk := [2]conflictKey{k1, k2}
				v, ok := verdicts[mk]
				if !ok {
					v = r.lockedButShared(reps[i], reps[j])
					verdicts[mk] = v
				}
				if v {
					matched[i] = true
				}
			}
		}
		for x, ai := range idxs {
			a1 := &r.Accesses[ai]
			if !a1.Write || a1.IsLock || len(a1.Held) == 0 || !matched[gidOf[x]] {
				continue
			}
			lockName := heldName(r.Prog, a1.Held)
			k := key{name, a1.Field, lockName}
			if _, dup := agg[k]; !dup {
				keys = append(keys, k)
			}
			agg[k] += a1.Freq
		}
	}
	var out []Finding
	for _, k := range keys {
		st := r.Prog.Struct(k.structName)
		if st == nil || k.field >= len(st.Fields) {
			continue
		}
		fname := st.Fields[k.field].Name
		out = append(out, Finding{
			Severity: diag.Warning,
			Code:     CodePerThreadLock,
			Struct:   k.structName,
			Fields:   []string{fname},
			Weight:   agg[k],
			Message: fmt.Sprintf("struct %s: field %s is written to a shared instance under lock %s, but threads acquire that lock on distinct instances — it serializes nothing",
				k.structName, fname, k.lock),
		})
	}
	return out
}

// lockedButShared reports whether a1 and a2 (same struct+field, a1 a
// locked write) can touch the same instance from distinct threads with no
// common concrete lock. Thread pairs the happens-before graph proves
// ordered cannot race at all, whatever their locks resolve to.
func (r *Result) lockedButShared(a1, a2 *Access) bool {
	for _, t1 := range a1.Threads {
		for _, t2 := range a2.Threads {
			if t1 == t2 {
				continue
			}
			if r.overlap(t1, a1, t2, a2) != ovMust {
				continue
			}
			if r.hbExcluded(t1, a1.Block, t2, a2.Block) {
				continue
			}
			if !r.lockExcluded(t1, a1, t2, a2) {
				return true
			}
		}
	}
	return false
}

// heldName renders the held set's lock field names for messages,
// deterministically (sorted, deduplicated).
func heldName(p *ir.Program, held []locks.Key) string {
	names := make([]string, 0, len(held))
	seen := make(map[string]bool)
	for _, k := range held {
		name := fmt.Sprintf("%s.#%d", k.Struct, k.Field)
		if st := p.Struct(k.Struct); st != nil && k.Field >= 0 && k.Field < len(st.Fields) {
			name = k.Struct + "." + st.Fields[k.Field].Name
		}
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return strings.Join(names, "+")
}

// LintCC converts the CC-versus-MHP cross-check into a finding, empty
// when the sampled map carries no contradicted mass.
func (r *Result) LintCC(cm *concurrency.Map) []Finding {
	chk := r.CheckCC(cm)
	if chk.ContradictedMass <= 0 {
		return nil
	}
	return []Finding{{
		Severity: diag.Warning,
		Code:     CodeExclusiveCC,
		Weight:   chk.ContradictedMass,
		Message: fmt.Sprintf("%d sampled block pair(s) carry %.4g CC mass but provably never run in parallel (agreement %.3f) — the trace misattributes concurrency",
			chk.ContradictedPairs, chk.ContradictedMass, chk.Agreement),
	}}
}

// Rank orders findings by severity (desc), weight (desc), then code,
// struct and message for a total deterministic order.
func Rank(fs []Finding) { rankFindings(fs) }

// rankFindings orders by severity (desc), weight (desc), then code,
// struct and message for a total deterministic order.
func rankFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Severity != fs[j].Severity {
			return fs[i].Severity > fs[j].Severity
		}
		if fs[i].Weight != fs[j].Weight {
			return fs[i].Weight > fs[j].Weight
		}
		if fs[i].Code != fs[j].Code {
			return fs[i].Code < fs[j].Code
		}
		if fs[i].Struct != fs[j].Struct {
			return fs[i].Struct < fs[j].Struct
		}
		return fs[i].Message < fs[j].Message
	})
}

// MaxSeverity returns the highest severity among the findings, or Info
// when there are none.
func MaxSeverity(fs []Finding) diag.Severity {
	max := diag.Info
	for _, f := range fs {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max
}

// ReportDiag mirrors the findings into a diagnostics log under the
// staticshare source, so pipeline reports carry them alongside the
// dynamic checks.
func ReportDiag(log *diag.Log, fs []Finding) {
	for _, f := range fs {
		log.Add(f.Severity, "staticshare", f.Code, "%s", f.Message)
	}
}

// MarshalFindings renders findings as machine-readable JSON (a stable
// array, ranked like Lint's output).
func MarshalFindings(fs []Finding) ([]byte, error) {
	if fs == nil {
		fs = []Finding{}
	}
	return json.MarshalIndent(fs, "", "  ")
}

// LintFile is the one-call linter for a parsed DSL file: analyze under
// the file's declared threads and arenas, then lint against
// declaration-order layouts at the given coherence-line size.
func LintFile(f *irtext.File, lineSize int) ([]Finding, *Result, error) {
	return lintFile(f, lineSize, false)
}

// LintFileExact is LintFile forced through the exact per-access-pair
// classification walk — the differential oracle for tests and the
// golint-bench baseline stage.
func LintFileExact(f *irtext.File, lineSize int) ([]Finding, *Result, error) {
	return lintFile(f, lineSize, true)
}

func lintFile(f *irtext.File, lineSize int, exact bool) ([]Finding, *Result, error) {
	if f == nil || f.Prog == nil {
		return nil, nil, fmt.Errorf("staticshare: nil file")
	}
	cfg := FileConfig(f)
	cfg.ExactClassify = exact
	res, err := Analyze(f.Prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	layouts := make(map[string]*layout.Layout)
	for _, st := range f.Prog.Structs {
		lay, lerr := layout.Original(st, lineSize)
		if lerr != nil {
			continue // un-layoutable struct: co-location checks skipped
		}
		layouts[st.Name] = lay
	}
	return res.Lint(layouts), res, nil
}

// hb.go is the happens-before layer under the MHP relation. The DSL's
// structured fork/join skeleton (spawn/join statements, rendezvous
// send/recv) makes the task graph a statically known series-parallel
// DAG: every task's entry procedure partitions at its top-level sync
// statements into segments, segments become nodes of a happens-before
// graph, and fork/join/channel edges order them. Two blocks are then
// provably ordered — cannot run in parallel — when every combination of
// the segments they can execute in is reachable one way or the other in
// that graph. The refinement is deliberately all-or-nothing per
// program: any configuration the one-task-per-spawn model cannot
// represent soundly (an unjoined spawn under an iterated parent)
// degrades to the flat relation rather than guessing.
package staticshare

import (
	"fmt"
	"sort"
	"strings"

	"structlayout/internal/ir"
)

// maxTasks bounds the fork tree: each spawn statement in a reached
// entry procedure materializes one task, so a deep spawn chain can grow
// geometrically. Past the cap the analysis errors rather than silently
// truncating the thread set (a truncated set would be unsound).
const maxTasks = 512

// hbTask is the per-task fork/join bookkeeping, parallel to
// Result.Threads. Root tasks (declared threads) have parent -1.
type hbTask struct {
	parent   int
	handle   string
	spawnSeg int // segment of the parent's entry proc holding the spawn
	joinSeg  int // segment holding the join, -1 when never joined
	// execBound is how many times the task's body can execute end to
	// end: Iters for roots, the parent's bound for spawned children.
	execBound int64
}

// hbState is the happens-before graph over (task, segment) nodes.
type hbState struct {
	tasks []hbTask
	// segCount maps a task-entry procedure to its segment count
	// (top-level sync statements + 1); procs absent have one segment.
	segCount map[string]int
	// blockSeg maps blocks of multi-segment entry procs to their
	// top-level segment.
	blockSeg map[ir.BlockID]int
	// calleeSegs maps entry proc → callee proc → sorted set of entry
	// segments whose call sites (transitively) reach the callee. Only
	// entry procs with more than one segment have entries.
	calleeSegs map[string]map[string][]int
	// spawnTask maps (parent task, handle) → child task index.
	spawnTask map[[2]string]int
	// offset and reach implement node reachability: node(t,s) =
	// offset[t]+s, reach[from] is the set of nodes reachable from it.
	offset []int
	nodes  int
	reach  [][]bool
	// degraded drops every ordering fact while keeping task discovery:
	// set when an iterated parent leaves a spawn unjoined (overlapping
	// same-task instances the model cannot see).
	degraded bool
	// chanDropped names channels whose edges were dropped (non-unique
	// endpoints, same-task pairing, iterated endpoint, or a cycle),
	// for diagnostics and tests.
	chanDropped []string
}

// syncStmtsOf returns the top-level sync statements of a procedure body
// in order.
func syncStmtsOf(pr *ir.Procedure) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range pr.Body {
		switch s.(type) {
		case *ir.SpawnStmt, *ir.JoinStmt, *ir.SendStmt, *ir.RecvStmt:
			out = append(out, s)
		}
	}
	return out
}

// discoverTasks extends the declared threads with every task reachable
// through spawn statements (breadth-first, declaration order, so task
// indices are deterministic) and records the fork/join skeleton. It
// must run before computeReach: spawned procedures are reached by their
// tasks. Returns an error only when the task tree exceeds maxTasks.
func (r *Result) discoverTasks() error {
	anySync := false
	for _, pr := range r.Prog.Procs {
		if len(syncStmtsOf(pr)) > 0 {
			anySync = true
			break
		}
	}
	if !anySync {
		return nil
	}
	h := &hbState{
		segCount:   make(map[string]int),
		blockSeg:   make(map[ir.BlockID]int),
		calleeSegs: make(map[string]map[string][]int),
		spawnTask:  make(map[[2]string]int),
	}
	for i := range r.Threads {
		bound := r.Threads[i].Iters
		if bound <= 0 {
			bound = 1
		}
		h.tasks = append(h.tasks, hbTask{parent: -1, joinSeg: -1, execBound: bound})
	}
	// Breadth-first over spawn statements; children append in parent
	// order, then statement order.
	for ti := 0; ti < len(h.tasks); ti++ {
		pr := r.Prog.Proc(r.Threads[ti].Proc)
		if pr == nil {
			continue
		}
		joinOrd := make(map[string]int) // handle -> sync ordinal of its join
		for ord, s := range syncStmtsOf(pr) {
			if j, ok := s.(*ir.JoinStmt); ok {
				joinOrd[j.Handle] = ord
			}
		}
		for ord, s := range syncStmtsOf(pr) {
			sp, ok := s.(*ir.SpawnStmt)
			if !ok {
				continue
			}
			if len(h.tasks) >= maxTasks {
				return fmt.Errorf("staticshare: spawn tree exceeds %d tasks", maxTasks)
			}
			joinSeg := -1
			if j, joined := joinOrd[sp.Handle]; joined {
				joinSeg = j
			}
			child := hbTask{
				parent:    ti,
				handle:    sp.Handle,
				spawnSeg:  ord,
				joinSeg:   joinSeg,
				execBound: h.tasks[ti].execBound,
			}
			if h.tasks[ti].execBound > 1 && joinSeg < 0 {
				// An unjoined child of an iterated parent has
				// overlapping instances the one-task model cannot
				// represent: keep the task (its accesses are real) but
				// drop every ordering fact.
				h.degraded = true
			}
			h.spawnTask[[2]string{fmt.Sprint(ti), sp.Handle}] = len(h.tasks)
			h.tasks = append(h.tasks, child)
			r.Threads = append(r.Threads, Thread{
				CPU:    sp.CPU,
				Proc:   sp.Callee,
				Params: append([]int(nil), sp.Params...),
				Iters:  h.tasks[ti].execBound,
			})
		}
	}
	r.hb = h
	return nil
}

// buildHB finishes the happens-before graph once the program's blocks
// exist: segment maps, fork/join and channel edges, reachability.
func (r *Result) buildHB() {
	h := r.hb
	if h == nil {
		return
	}
	// Segment structure per entry procedure.
	entryProcs := make(map[string]bool)
	for i := range h.tasks {
		entryProcs[r.Threads[i].Proc] = true
	}
	for name := range entryProcs {
		pr := r.Prog.Proc(name)
		if pr == nil {
			continue
		}
		n := len(syncStmtsOf(pr)) + 1
		h.segCount[name] = n
		if n > 1 {
			h.assignBlockSegs(pr)
		}
	}
	h.propagateCalleeSegs(r.Prog)

	// Node numbering.
	h.offset = make([]int, len(h.tasks))
	for i := range h.tasks {
		h.offset[i] = h.nodes
		h.nodes += h.segsOfTask(r, i)
	}
	succ := make([][]int, h.nodes)
	addEdge := func(from, to int) { succ[from] = append(succ[from], to) }
	node := func(t, s int) int { return h.offset[t] + s }
	for t := range h.tasks {
		n := h.segsOfTask(r, t)
		for s := 0; s+1 < n; s++ {
			addEdge(node(t, s), node(t, s+1))
		}
	}
	for c := range h.tasks {
		ct := h.tasks[c]
		if ct.parent < 0 {
			continue
		}
		addEdge(node(ct.parent, ct.spawnSeg), node(c, 0))
		if ct.joinSeg >= 0 {
			addEdge(node(c, h.segsOfTask(r, c)-1), node(ct.parent, ct.joinSeg+1))
		}
	}
	chanEdges := h.channelEdges(r)
	for _, e := range chanEdges {
		addEdge(e[0], e[1])
	}
	if len(chanEdges) > 0 && hasCycle(succ) {
		// The fork/join tree alone is acyclic; a cycle can only come
		// from channel edges (a deadlocking rendezvous pattern). Drop
		// them all: the refinement stays a DAG.
		succ = make([][]int, h.nodes)
		for t := range h.tasks {
			n := h.segsOfTask(r, t)
			for s := 0; s+1 < n; s++ {
				addEdge(node(t, s), node(t, s+1))
			}
		}
		for c := range h.tasks {
			ct := h.tasks[c]
			if ct.parent < 0 {
				continue
			}
			addEdge(node(ct.parent, ct.spawnSeg), node(c, 0))
			if ct.joinSeg >= 0 {
				addEdge(node(c, h.segsOfTask(r, c)-1), node(ct.parent, ct.joinSeg+1))
			}
		}
		h.chanDropped = append(h.chanDropped, "cycle")
	}

	// Transitive reachability (strict: a node does not reach itself).
	h.reach = make([][]bool, h.nodes)
	for from := 0; from < h.nodes; from++ {
		seen := make([]bool, h.nodes)
		stack := append([]int(nil), succ[from]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			stack = append(stack, succ[v]...)
		}
		h.reach[from] = seen
	}
}

// hasCycle reports whether the edge lists contain a directed cycle.
func hasCycle(succ [][]int) bool {
	const (
		white = iota
		grey
		black
	)
	color := make([]int, len(succ))
	var visit func(v int) bool
	visit = func(v int) bool {
		color[v] = grey
		for _, w := range succ[v] {
			switch color[w] {
			case grey:
				return true
			case white:
				if visit(w) {
					return true
				}
			}
		}
		color[v] = black
		return false
	}
	for v := range succ {
		if color[v] == white && visit(v) {
			return true
		}
	}
	return false
}

// segsOfTask returns the number of segments of task t's entry proc.
func (h *hbState) segsOfTask(r *Result, t int) int {
	if n := h.segCount[r.Threads[t].Proc]; n > 0 {
		return n
	}
	return 1
}

// assignBlockSegs walks the lowered execution tree of a multi-segment
// entry proc, assigning each top-level block its segment: the counter
// bumps after every sync block, nested subtrees (loops, branches,
// which cannot contain sync) take the current segment, and the exit
// block lands in the last segment.
func (h *hbState) assignBlockSegs(pr *ir.Procedure) {
	seg := 0
	var walk func(nodes []ir.ExecNode, topLevel bool)
	walk = func(nodes []ir.ExecNode, topLevel bool) {
		for _, n := range nodes {
			switch n := n.(type) {
			case *ir.ExecBlock:
				if n.Block == nil {
					continue
				}
				h.blockSeg[n.Block.Global] = seg
				if topLevel && isSyncBlock(n.Block) {
					seg++
				}
			case *ir.ExecLoop:
				if n.Loop != nil && n.Loop.Header != nil {
					h.blockSeg[n.Loop.Header.Global] = seg
				}
				walk(n.Body, false)
			case *ir.ExecIf:
				if n.Cond != nil {
					h.blockSeg[n.Cond.Global] = seg
				}
				walk(n.Then, false)
				walk(n.Else, false)
				if n.Join != nil {
					h.blockSeg[n.Join.Global] = seg
				}
			}
		}
	}
	walk(pr.Tree, true)
}

// isSyncBlock reports whether the block is a dedicated sync block (one
// spawn/join/send/recv instruction; the lowering guarantees the shape).
func isSyncBlock(b *ir.BasicBlock) bool {
	if len(b.Instrs) != 1 {
		return false
	}
	switch b.Instrs[0].Op {
	case ir.OpSpawn, ir.OpJoin, ir.OpSend, ir.OpRecv:
		return true
	}
	return false
}

// propagateCalleeSegs computes, for every multi-segment entry proc, the
// set of its segments each (transitive) callee can execute in: the
// segment of the call block for direct calls, unioned through the call
// graph callers-first. Callees contain no sync statements, so a proc's
// set is uniform across its own blocks.
func (h *hbState) propagateCalleeSegs(p *ir.Program) {
	g := buildCallGraph(p)
	comps := g.sccTopo()
	for entry, n := range h.segCount {
		if n <= 1 {
			continue
		}
		sets := make(map[string]map[int]bool)
		add := func(proc string, segs map[int]bool) {
			dst := sets[proc]
			if dst == nil {
				dst = make(map[int]bool)
				sets[proc] = dst
			}
			for s := range segs {
				dst[s] = true
			}
		}
		for _, c := range comps {
			for _, v := range c {
				pr := g.procs[v]
				var from map[int]bool
				if pr.Name == entry {
					from = nil // per-block, handled at the call site below
				} else if sets[pr.Name] == nil {
					continue // not reachable from this entry
				} else {
					from = sets[pr.Name]
				}
				for _, b := range pr.Blocks {
					for _, in := range b.Instrs {
						if in.Op != ir.OpCall {
							continue
						}
						if from == nil {
							add(in.Callee, map[int]bool{h.blockSeg[b.Global]: true})
						} else {
							add(in.Callee, from)
						}
					}
				}
			}
		}
		out := make(map[string][]int, len(sets))
		for proc, set := range sets {
			segs := make([]int, 0, len(set))
			for s := range set {
				segs = append(segs, s)
			}
			sort.Ints(segs)
			out[proc] = segs
		}
		h.calleeSegs[entry] = out
	}
}

// channelEdges derives rendezvous edges: for each channel with exactly
// one send instance and one recv instance, on distinct tasks, both
// executing at most once, the receiver's continuation is ordered after
// the sender's prefix and vice versa. Anything else drops the channel
// (recorded in chanDropped).
func (h *hbState) channelEdges(r *Result) [][2]int {
	type endpoint struct {
		task int
		ord  int
		n    int // occurrence count across all tasks
	}
	sends := make(map[string]*endpoint)
	recvs := make(map[string]*endpoint)
	record := func(m map[string]*endpoint, ch string, task, ord int) {
		e := m[ch]
		if e == nil {
			m[ch] = &endpoint{task: task, ord: ord, n: 1}
			return
		}
		e.n++
	}
	for ti := range h.tasks {
		pr := r.Prog.Proc(r.Threads[ti].Proc)
		if pr == nil {
			continue
		}
		for ord, s := range syncStmtsOf(pr) {
			switch s := s.(type) {
			case *ir.SendStmt:
				record(sends, s.Chan, ti, ord)
			case *ir.RecvStmt:
				record(recvs, s.Chan, ti, ord)
			}
		}
	}
	chans := make([]string, 0, len(sends))
	for ch := range sends {
		chans = append(chans, ch)
	}
	for ch := range recvs {
		if _, ok := sends[ch]; !ok {
			chans = append(chans, ch)
		}
	}
	sort.Strings(chans)
	var edges [][2]int
	for _, ch := range chans {
		s, rv := sends[ch], recvs[ch]
		if s == nil || rv == nil || s.n != 1 || rv.n != 1 || s.task == rv.task ||
			h.tasks[s.task].execBound != 1 || h.tasks[rv.task].execBound != 1 {
			h.chanDropped = append(h.chanDropped, ch)
			continue
		}
		// Sender prefix (segs ≤ a) before receiver continuation (segs
		// > b), and receiver prefix before sender continuation: the
		// rendezvous completes both sides together.
		edges = append(edges,
			[2]int{h.offset[s.task] + s.ord, h.offset[rv.task] + rv.ord + 1},
			[2]int{h.offset[rv.task] + rv.ord, h.offset[s.task] + s.ord + 1})
	}
	return edges
}

// segsOf returns the segments of the entry proc of task t in which
// block b can execute: the block's own segment when b belongs to the
// entry proc, the propagated call-site set when it belongs to a callee,
// and segment 0 otherwise.
func (h *hbState) segsOf(r *Result, t int, b ir.BlockID) []int {
	blk := r.blockAt(b)
	if blk == nil {
		return []int{0}
	}
	entry := r.Threads[t].Proc
	if h.segCount[entry] <= 1 {
		return []int{0}
	}
	if blk.Proc.Name == entry {
		return []int{h.blockSeg[b]}
	}
	if segs := h.calleeSegs[entry][blk.Proc.Name]; len(segs) > 0 {
		return segs
	}
	return []int{0}
}

// ordered reports whether node (t1,s1) happens strictly before (t2,s2).
func (h *hbState) orderedNode(t1, s1, t2, s2 int) bool {
	return h.reach[h.offset[t1]+s1][h.offset[t2]+s2]
}

// hbExcluded reports whether blocks b1 on task t1 and b2 on task t2 are
// provably ordered: every combination of the segments they can execute
// in is happens-before reachable in one direction or the other.
func (r *Result) hbExcluded(t1 int, b1 ir.BlockID, t2 int, b2 ir.BlockID) bool {
	h := r.hb
	if h == nil || h.degraded || t1 == t2 {
		return false
	}
	for _, s1 := range h.segsOf(r, t1, b1) {
		for _, s2 := range h.segsOf(r, t2, b2) {
			if !h.orderedNode(t1, s1, t2, s2) && !h.orderedNode(t2, s2, t1, s1) {
				return false
			}
		}
	}
	return true
}

// HBOrdered is the exported form of the block-pair ordering fact, for
// the soundness harness and tests.
func (r *Result) HBOrdered(t1 int, b1 ir.BlockID, t2 int, b2 ir.BlockID) bool {
	return r.hbExcluded(t1, b1, t2, b2)
}

// HBDegraded reports whether the happens-before refinement was dropped
// (unjoined spawn under an iterated parent).
func (r *Result) HBDegraded() bool { return r.hb != nil && r.hb.degraded }

// HBAcyclic reports whether the happens-before reachability is a strict
// order (no node reaches itself); vacuously true without sync
// statements. The FuzzHB target asserts it.
func (r *Result) HBAcyclic() bool {
	if r.hb == nil {
		return true
	}
	for v := 0; v < r.hb.nodes; v++ {
		if r.hb.reach[v][v] {
			return false
		}
	}
	return true
}

// SpawnedTask returns the task index created by parent's spawn of the
// given handle, for the interleaving harness.
func (r *Result) SpawnedTask(parent int, handle string) (int, bool) {
	if r.hb == nil {
		return 0, false
	}
	ti, ok := r.hb.spawnTask[[2]string{fmt.Sprint(parent), handle}]
	return ti, ok
}

// segKeyOf canonically encodes, for grouping, everything the
// happens-before verdicts of an access depend on beyond its thread set:
// per reaching thread, the segments its block can execute in. Programs
// without sync statements (or degraded ones) encode as "", so their
// grouping — and therefore the summary path's verdict memoization — is
// unchanged from the pre-HB analysis.
func (r *Result) segKeyOf(threads []int, b ir.BlockID) string {
	h := r.hb
	if h == nil || h.degraded {
		return ""
	}
	var sb strings.Builder
	for i, t := range threads {
		if i > 0 {
			sb.WriteByte(';')
		}
		for j, s := range h.segsOf(r, t, b) {
			if j > 0 {
				sb.WriteByte('.')
			}
			fmt.Fprintf(&sb, "%d", s)
		}
	}
	return sb.String()
}

package staticshare

import (
	"strings"
	"testing"

	"structlayout/internal/concurrency"
	"structlayout/internal/flg"
	"structlayout/internal/ir"
	"structlayout/internal/irtext"
)

// classProg builds a program with one access of every sharing class:
//
//	data.ws_a / data.ws_b   written at shared 0 by distinct threads  -> write-shared, certain
//	data.rd_a / data.rd_b   read at shared 0 by distinct threads     -> read-shared
//	data.pt_a / data.pt_b   written at param 0 (distinct bindings)   -> never-shared
//	guarded.g_a / guarded.g_b written under a common global lock     -> lock-serialized
//
// The lock word lives in its own struct so its acquire access (which is
// not protected by the lock it takes) cannot pollute the data structs'
// pair classes.
func classProg(t *testing.T) (*ir.Program, Config) {
	t.Helper()
	p := ir.NewProgram("classes")
	data := ir.NewStruct("data",
		ir.I64("ws_a"), ir.I64("ws_b"),
		ir.I64("rd_a"), ir.I64("rd_b"),
		ir.I64("pt_a"), ir.I64("pt_b"),
	)
	guarded := ir.NewStruct("guarded", ir.I64("g_a"), ir.I64("g_b"))
	mu := ir.NewStruct("mu", ir.I64("word"))
	p.AddStruct(data)
	p.AddStruct(guarded)
	p.AddStruct(mu)
	w0 := p.NewProc("writer0")
	w0.Write(data, "ws_a", ir.Shared(0))
	w0.Read(data, "rd_a", ir.Shared(0))
	w0.Write(data, "pt_a", ir.Param(0))
	w0.Lock(mu, "word", ir.Shared(0))
	w0.Write(guarded, "g_a", ir.Shared(0))
	w0.Unlock(mu, "word", ir.Shared(0))
	w0.Done()
	w1 := p.NewProc("writer1")
	w1.Write(data, "ws_b", ir.Shared(0))
	w1.Read(data, "rd_b", ir.Shared(0))
	w1.Write(data, "pt_b", ir.Param(0))
	w1.Lock(mu, "word", ir.Shared(0))
	w1.Write(guarded, "g_b", ir.Shared(0))
	w1.Unlock(mu, "word", ir.Shared(0))
	w1.Done()
	cfg := Config{
		Threads: []Thread{
			{CPU: 0, Proc: "writer0", Params: []int{0}, Iters: 4},
			{CPU: 1, Proc: "writer1", Params: []int{1}, Iters: 4},
		},
		Arenas: map[string]int{"data": 8, "guarded": 1, "mu": 1},
	}
	return p.MustFinalize(), cfg
}

func fieldIdx(t *testing.T, st *ir.StructType, name string) int {
	t.Helper()
	for i, f := range st.Fields {
		if f.Name == name {
			return i
		}
	}
	t.Fatalf("struct %s has no field %s", st.Name, name)
	return -1
}

func TestClassification(t *testing.T) {
	p, cfg := classProg(t)
	r, err := Analyze(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := p.Struct("data")
	check := func(st *ir.StructType, f1, f2 string, want PairClass, wantCertain bool) {
		t.Helper()
		pi := r.Pair(st.Name, fieldIdx(t, st, f1), fieldIdx(t, st, f2))
		if pi.Class != want || pi.Certain != wantCertain {
			t.Errorf("%s.%s/%s: got %v (certain=%v), want %v (certain=%v)",
				st.Name, f1, f2, pi.Class, pi.Certain, want, wantCertain)
		}
	}
	check(data, "ws_a", "ws_b", WriteShared, true)
	check(data, "rd_a", "rd_b", ReadShared, false)
	check(data, "pt_a", "pt_b", NeverShared, false)
	check(p.Struct("guarded"), "g_a", "g_b", LockSerialized, false)
}

func TestPerThreadLockDoesNotSerialize(t *testing.T) {
	p, cfg := classProg(t)
	// Same program, but the lock instance now derives from param 0, which
	// the two threads bind to distinct values: exclusion evaporates and the
	// guarded pair becomes certain write-shared. The lock arena needs more
	// than one instance — indices compare modulo the count, and modulo 1
	// every binding is the same lock.
	cfg.Arenas["mu"] = 8
	for _, b := range p.Blocks() {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if (in.Op == ir.OpLock || in.Op == ir.OpUnlock) && in.Struct.Name == "mu" {
				in.Inst = ir.Param(0)
			}
		}
	}
	r, err := Analyze(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := p.Struct("guarded")
	pi := r.Pair("guarded", fieldIdx(t, g, "g_a"), fieldIdx(t, g, "g_b"))
	if pi.Class != WriteShared || !pi.Certain {
		t.Fatalf("per-thread lock: got %v (certain=%v), want certain write-shared", pi.Class, pi.Certain)
	}
}

func TestSweepOverlapsEverything(t *testing.T) {
	p := ir.NewProgram("sweep")
	s := ir.NewStruct("node", ir.I64("n_key"), ir.I64("n_gen"))
	p.AddStruct(s)
	scan := p.NewProc("scan")
	scan.Loop(16, func(b *ir.Builder) {
		b.Read(s, "n_key", ir.LoopVar())
	})
	scan.Done()
	bump := p.NewProc("bump")
	bump.Write(s, "n_gen", ir.Param(0))
	bump.Done()
	prog := p.MustFinalize()
	r, err := Analyze(prog, Config{
		Threads: []Thread{
			{CPU: 0, Proc: "scan", Iters: 1},
			{CPU: 1, Proc: "bump", Params: []int{3}, Iters: 1},
		},
		Arenas: map[string]int{"node": 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	pi := r.Pair("node", 0, 1)
	if pi.Class != WriteShared || !pi.Certain {
		t.Fatalf("sweep x param write: got %v (certain=%v), want certain write-shared", pi.Class, pi.Certain)
	}
}

func TestUnknownParamIsUncertain(t *testing.T) {
	p := ir.NewProgram("unknown")
	s := ir.NewStruct("cell", ir.I64("c_a"), ir.I64("c_b"))
	p.AddStruct(s)
	w := p.NewProc("touch")
	w.Write(s, "c_a", ir.Param(0))
	w.Write(s, "c_b", ir.Param(1))
	w.Done()
	prog := p.MustFinalize()
	// Thread 1 declares only one parameter, so param 1 is unbound: the
	// overlap degrades to may, the class to uncertain write-shared.
	r, err := Analyze(prog, Config{
		Threads: []Thread{
			{CPU: 0, Proc: "touch", Params: []int{0, 1}, Iters: 1},
			{CPU: 1, Proc: "touch", Params: []int{0}, Iters: 1},
		},
		Arenas: map[string]int{"cell": 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	pi := r.Pair("cell", 0, 1)
	if pi.Class != WriteShared || pi.Certain {
		t.Fatalf("unknown param: got %v (certain=%v), want uncertain write-shared", pi.Class, pi.Certain)
	}
}

func TestExclusiveAndMHP(t *testing.T) {
	p := ir.NewProgram("mhp")
	s := ir.NewStruct("tbl", ir.I64("t_x"))
	p.AddStruct(s)
	only0 := p.NewProc("only0")
	only0.Write(s, "t_x", ir.PerCPU())
	only0.Done()
	only1 := p.NewProc("only1")
	only1.Write(s, "t_x", ir.PerCPU())
	only1.Done()
	both := p.NewProc("both")
	both.Read(s, "t_x", ir.Shared(0))
	both.Done()
	e0 := p.NewProc("entry0")
	e0.Call("only0")
	e0.Call("both")
	e0.Done()
	e1 := p.NewProc("entry1")
	e1.Call("only1")
	e1.Call("both")
	e1.Done()
	prog := p.MustFinalize()
	r, err := Analyze(prog, Config{
		Threads: []Thread{
			{CPU: 0, Proc: "entry0", Iters: 1},
			{CPU: 1, Proc: "entry1", Iters: 1},
		},
		Arenas: map[string]int{"tbl": 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	b0 := prog.Proc("only0").Blocks[0].Global
	b1 := prog.Proc("only1").Blocks[0].Global
	bb := prog.Proc("both").Blocks[0].Global
	if !r.Exclusive(b0, b0) {
		t.Error("single-thread block should be exclusive with itself")
	}
	if r.Exclusive(b0, b1) {
		t.Error("blocks reached by two different threads can run concurrently: MHP")
	}
	if r.Exclusive(bb, bb) {
		t.Error("block reached by two threads should be MHP with itself")
	}
	if !r.MayHappenInParallel(b0, bb) {
		t.Error("single-thread block vs shared block should be MHP (distinct threads reach both)")
	}
}

func TestCheckCC(t *testing.T) {
	p, cfg := classProg(t)
	r, err := Analyze(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b0 := p.Proc("writer0").Blocks[0].Global
	b1 := p.Proc("writer1").Blocks[0].Global
	// Sanity: the two entry procs are each reached by one thread only.
	if !r.Exclusive(b0, b0) {
		t.Fatal("writer0's block should be self-exclusive")
	}
	clean := &concurrency.Map{CC: map[concurrency.Pair]float64{
		concurrency.MakePair(b0, b1): 5, // distinct threads: genuinely MHP
	}}
	if chk := r.CheckCC(clean); chk.Agreement != 1 || chk.ContradictedMass != 0 {
		t.Fatalf("clean map: agreement %v, contradicted %v; want 1, 0", chk.Agreement, chk.ContradictedMass)
	}
	bad := &concurrency.Map{CC: map[concurrency.Pair]float64{
		concurrency.MakePair(b0, b1): 3,
		concurrency.MakePair(b0, b0): 1, // self-pair of a single-thread block: impossible
	}}
	chk := r.CheckCC(bad)
	if chk.ContradictedMass != 1 || chk.ContradictedPairs != 1 {
		t.Fatalf("bad map: contradicted mass %v pairs %d; want 1, 1", chk.ContradictedMass, chk.ContradictedPairs)
	}
	if chk.Agreement >= 1 || chk.Agreement <= 0 {
		t.Fatalf("bad map: agreement %v, want in (0,1)", chk.Agreement)
	}
	if chk := r.CheckCC(nil); chk.Agreement != 1 {
		t.Fatalf("nil map: agreement %v, want 1", chk.Agreement)
	}
}

func TestApplyPrior(t *testing.T) {
	p, cfg := classProg(t)
	r, err := Analyze(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := p.Struct("data")
	wsA, wsB := fieldIdx(t, data, "ws_a"), fieldIdx(t, data, "ws_b")
	key := [2]int{wsA, wsB}
	if wsA > wsB {
		key = [2]int{wsB, wsA}
	}
	g := &flg.Graph{
		Struct:  data,
		Gain:    map[[2]int]float64{key: 100},
		Loss:    map[[2]int]float64{},
		Hotness: map[int]float64{},
	}
	pr := r.ApplyPrior(g, PriorOptions{})
	if pr.Certain == 0 {
		t.Fatal("prior should floor at least one certain pair")
	}
	if g.Loss[key] <= g.Gain[key] {
		t.Fatalf("certain write-shared pair: loss %v must exceed gain %v", g.Loss[key], g.Gain[key])
	}
	// Idempotent: a second application must not move the graph.
	before := g.Loss[key]
	r.ApplyPrior(g, PriorOptions{})
	if g.Loss[key] != before {
		t.Fatalf("prior not idempotent: %v -> %v", before, g.Loss[key])
	}
}

func TestAnalyzeValidation(t *testing.T) {
	p, cfg := classProg(t)
	if _, err := Analyze(nil, cfg); err == nil {
		t.Error("nil program should error")
	}
	bad := cfg
	bad.Threads = append([]Thread(nil), cfg.Threads...)
	bad.Threads[0].Proc = "no_such_proc"
	if _, err := Analyze(p, bad); err == nil || !strings.Contains(err.Error(), "no_such_proc") {
		t.Errorf("unknown entry proc: got %v", err)
	}
	// Zero threads is allowed: nothing is shared, lock facts remain.
	r, err := Analyze(p, Config{Arenas: cfg.Arenas})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pairs) != 0 {
		t.Errorf("no threads: want no sharing pairs, got %v", r.Pairs)
	}
}

func TestAnalyzeDamagedProgramNoPanic(t *testing.T) {
	p, cfg := classProg(t)
	// Damage the finalized program the way the fault-injection tests
	// damage CFGs: nil struct pointers on field instructions.
	for _, b := range p.Blocks() {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpField {
				b.Instrs[i].Struct = nil
			}
		}
	}
	r, err := Analyze(p, cfg)
	if err == nil && r == nil {
		t.Fatal("nil result without error")
	}
	// Either outcome is fine; panicking is not (recover turns it into err).
}

// uncountedProg writes two distinct fixed instance indices of one struct
// from two threads; the arena count is whatever the caller declares.
func uncountedProg(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram("uncounted")
	s := ir.NewStruct("blob", ir.I64("b_a"), ir.I64("b_b"))
	p.AddStruct(s)
	w0 := p.NewProc("w0")
	w0.Write(s, "b_a", ir.Shared(0))
	w0.Done()
	w1 := p.NewProc("w1")
	w1.Write(s, "b_b", ir.Shared(3))
	w1.Done()
	return p.MustFinalize()
}

func uncountedThreads() []Thread {
	return []Thread{
		{CPU: 0, Proc: "w0", Iters: 1},
		{CPU: 1, Proc: "w1", Iters: 1},
	}
}

func TestUnknownArenaCountIsConservative(t *testing.T) {
	prog := uncountedProg(t)
	// Without a declared count, indices 0 and 3 collide at any count
	// dividing 3 — and the interpreter's undeclared-arena default is a
	// single instance, where they certainly collide. Distinctness must
	// not be provable: the pair degrades to (uncertain) write-shared,
	// never to never-shared.
	r, err := Analyze(prog, Config{Threads: uncountedThreads()})
	if err != nil {
		t.Fatal(err)
	}
	pi := r.Pair("blob", 0, 1)
	if pi.Class != WriteShared || pi.Certain {
		t.Fatalf("unknown count, distinct indices: got %v (certain=%v), want uncertain write-shared", pi.Class, pi.Certain)
	}
	// With a count that keeps the indices apart, distinctness is exact.
	r2, err := Analyze(prog, Config{Threads: uncountedThreads(), Arenas: map[string]int{"blob": 8}})
	if err != nil {
		t.Fatal(err)
	}
	if pi := r2.Pair("blob", 0, 1); pi.Class != NeverShared {
		t.Fatalf("count 8, indices 0 vs 3: got %v, want never-shared", pi.Class)
	}
	// And with a count that folds them together, the collision is certain.
	r3, err := Analyze(prog, Config{Threads: uncountedThreads(), Arenas: map[string]int{"blob": 3}})
	if err != nil {
		t.Fatal(err)
	}
	if pi := r3.Pair("blob", 0, 1); pi.Class != WriteShared || !pi.Certain {
		t.Fatalf("count 3, indices 0 vs 3: got %v (certain=%v), want certain write-shared", pi.Class, pi.Certain)
	}
}

func TestUnknownCountEqualIndicesStayCertain(t *testing.T) {
	p := ir.NewProgram("uncounted_eq")
	s := ir.NewStruct("blob", ir.I64("b_a"), ir.I64("b_b"))
	p.AddStruct(s)
	w0 := p.NewProc("w0")
	w0.Write(s, "b_a", ir.Shared(5))
	w0.Done()
	w1 := p.NewProc("w1")
	w1.Write(s, "b_b", ir.Shared(5))
	w1.Done()
	// i mod n == i mod n for every n: equal raw indices must-overlap even
	// with the count unknown.
	r, err := Analyze(p.MustFinalize(), Config{Threads: uncountedThreads()})
	if err != nil {
		t.Fatal(err)
	}
	if pi := r.Pair("blob", 0, 1); pi.Class != WriteShared || !pi.Certain {
		t.Fatalf("unknown count, equal indices: got %v (certain=%v), want certain write-shared", pi.Class, pi.Certain)
	}
}

func TestUnknownCountParamBindingsNotDistinct(t *testing.T) {
	p := ir.NewProgram("uncounted_param")
	s := ir.NewStruct("cell", ir.I64("c_a"), ir.I64("c_b"))
	p.AddStruct(s)
	w := p.NewProc("touch")
	w.Write(s, "c_a", ir.Param(0))
	w.Write(s, "c_b", ir.Param(0))
	w.Done()
	prog := p.MustFinalize()
	threads := []Thread{
		{CPU: 0, Proc: "touch", Params: []int{0}, Iters: 1},
		{CPU: 1, Proc: "touch", Params: []int{4}, Iters: 1},
	}
	// Distinct param bindings prove nothing without a count (0 and 4
	// collide at counts 1, 2, 4): uncertain write-shared, param footprint.
	r, err := Analyze(prog, Config{Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	if pi := r.Pair("cell", 0, 1); pi.Class != WriteShared || pi.Certain {
		t.Fatalf("unknown count, param bindings: got %v (certain=%v), want uncertain write-shared", pi.Class, pi.Certain)
	}
	for _, a := range r.Accesses {
		if a.Foot == FootPerThread {
			t.Fatalf("unknown count: access %s.%s claims per-thread distinctness", a.Struct.Name, a.Struct.Fields[a.Field].Name)
		}
	}
	// The declared count restores the proof.
	r2, err := Analyze(prog, Config{Threads: threads, Arenas: map[string]int{"cell": 8}})
	if err != nil {
		t.Fatal(err)
	}
	if pi := r2.Pair("cell", 0, 1); pi.Class != NeverShared {
		t.Fatalf("count 8, distinct bindings: got %v, want never-shared", pi.Class)
	}
}

func TestFileConfigDefaultsUndeclaredArenas(t *testing.T) {
	src := `
program defaulted

struct blob {
    b_a i64
    b_b i64
}

proc w0 { write blob.b_a shared 0 }
proc w1 { write blob.b_b shared 3 }

thread 0 w0 iters 1
thread 1 w1 iters 1
`
	f, err := irtext.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := FileConfig(f)
	// driver.Run gives undeclared arenas one instance; the static config
	// must match, or the DSL path would report may-overlaps the
	// interpreter contradicts.
	if n := cfg.Arenas["blob"]; n != 1 {
		t.Fatalf("undeclared arena defaulted to %d instances, want 1", n)
	}
	r, err := Analyze(f.Prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pi := r.Pair("blob", 0, 1); pi.Class != WriteShared || !pi.Certain {
		t.Fatalf("one-instance default: got %v (certain=%v), want certain write-shared", pi.Class, pi.Certain)
	}
}

func TestSummary(t *testing.T) {
	p, cfg := classProg(t)
	r, err := Analyze(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Summary("data")
	if s == nil {
		t.Fatal("summary for data should exist")
	}
	text := s.String()
	if !strings.Contains(text, "write-shared") || !strings.Contains(text, "ws_a") {
		t.Errorf("summary missing expected content:\n%s", text)
	}
	if r.Summary("mu") == nil {
		// The lock struct has accesses too; either way must not panic.
		t.Log("no summary for mu (no pairs) — fine")
	}
	if r.Summary("no_such_struct") != nil {
		t.Error("summary for unknown struct should be nil")
	}
}

package staticshare

import (
	"strings"
	"testing"

	"structlayout/internal/affinity"
	"structlayout/internal/concurrency"
	"structlayout/internal/flg"
	"structlayout/internal/ir"
	"structlayout/internal/irtext"
)

// analyzeSrc parses and analyzes a DSL source under its declared
// configuration, optionally through the exact oracle.
func analyzeSrc(t *testing.T, src string, exact bool) *Result {
	t.Helper()
	f, err := irtext.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := FileConfig(f)
	cfg.ExactClassify = exact
	res, err := Analyze(f.Prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const hbForkJoinSrc = `program forkjoin

struct S {
    a i64
    b i64
}

proc parent {
    write S.a shared 0
    spawn h 1 child
    join h
    write S.a shared 0
}

proc child {
    write S.b shared 0
}

arena S 1
thread 0 parent iters 1
`

// TestForkJoinOrdersOutConflict pins the tentpole refinement: the
// parent writes S.a strictly before the spawn and after the join, the
// child writes S.b in between — every segment combination is ordered,
// so the flat verdict (write-shared, both tasks touch shared instance
// 0) refines to never-shared.
func TestForkJoinOrdersOutConflict(t *testing.T) {
	res := analyzeSrc(t, hbForkJoinSrc, false)
	if len(res.Threads) != 2 {
		t.Fatalf("task discovery: got %d threads, want 2 (root + spawned)", len(res.Threads))
	}
	if res.Threads[1].Proc != "child" || res.Threads[1].CPU != 1 {
		t.Errorf("spawned task = %+v, want proc child on CPU 1", res.Threads[1])
	}
	if info := res.Pair("S", 0, 1); info.Class != NeverShared {
		t.Errorf("fork/join program: Pair(S,a,b) = %v, want never-shared", info.Class)
	}
	if !res.HBAcyclic() {
		t.Error("HB graph has a cycle")
	}
	if res.HBDegraded() {
		t.Error("HB degraded on a fully joined program")
	}
}

// TestUnjoinedSpawnStaysShared: without the join edge the child's write
// overlaps the parent's tail write, so the conflict must survive.
func TestUnjoinedSpawnStaysShared(t *testing.T) {
	src := strings.Replace(hbForkJoinSrc, "    join h\n", "", 1)
	res := analyzeSrc(t, src, false)
	if info := res.Pair("S", 0, 1); info.Class != WriteShared || !info.Certain {
		t.Errorf("unjoined spawn: Pair(S,a,b) = %v (certain %v), want certain write-shared",
			info.Class, info.Certain)
	}
}

// TestSpawnOnlyPrefixOrdered: with no join, the parent's writes BEFORE
// the spawn are still ordered before the child — a program whose only
// parent write precedes the spawn stays clean.
func TestSpawnOnlyPrefixOrdered(t *testing.T) {
	src := strings.Replace(hbForkJoinSrc, "    join h\n    write S.a shared 0\n", "", 1)
	res := analyzeSrc(t, src, false)
	if info := res.Pair("S", 0, 1); info.Class != NeverShared {
		t.Errorf("prefix-only parent write: Pair(S,a,b) = %v, want never-shared", info.Class)
	}
}

const hbPipelineSrc = `program pipeline

struct S {
    a i64
    b i64
}

proc stage1 {
    write S.a shared 0
    send c
}

proc stage2 {
    recv c
    write S.b shared 0
}

arena S 1
thread 0 stage1 iters 1
thread 1 stage2 iters 1
`

// TestChannelHandoffOrdersStages: the rendezvous orders stage1's write
// before stage2's, refining the flat write-shared verdict away.
func TestChannelHandoffOrdersStages(t *testing.T) {
	res := analyzeSrc(t, hbPipelineSrc, false)
	if info := res.Pair("S", 0, 1); info.Class != NeverShared {
		t.Errorf("pipeline: Pair(S,a,b) = %v, want never-shared", info.Class)
	}
	if !res.HBAcyclic() {
		t.Error("HB graph has a cycle")
	}
}

// TestChannelReverseStillShared: a write AFTER the send is unordered
// with the receiver's write, so swapping the sender's statement order
// must keep the conflict.
func TestChannelReverseStillShared(t *testing.T) {
	src := strings.Replace(hbPipelineSrc,
		"    write S.a shared 0\n    send c\n",
		"    send c\n    write S.a shared 0\n", 1)
	res := analyzeSrc(t, src, false)
	if info := res.Pair("S", 0, 1); info.Class != WriteShared {
		t.Errorf("post-send write: Pair(S,a,b) = %v, want write-shared", info.Class)
	}
}

// TestChannelCycleDropsEdges: a crossed rendezvous (each side receives
// before it sends) would put a cycle in the HB graph; the analysis must
// drop the channel edges and stay acyclic rather than claim orderings
// from a deadlock.
func TestChannelCycleDropsEdges(t *testing.T) {
	src := `program crossed

struct S {
    a i64
    b i64
}

proc p1 {
    write S.a shared 0
    recv x
    send y
}

proc p2 {
    write S.b shared 0
    recv y
    send x
}

arena S 1
thread 0 p1 iters 1
thread 1 p2 iters 1
`
	res := analyzeSrc(t, src, false)
	if !res.HBAcyclic() {
		t.Fatal("crossed channels left a cycle in the HB graph")
	}
	if info := res.Pair("S", 0, 1); info.Class != WriteShared {
		t.Errorf("crossed channels: Pair(S,a,b) = %v, want write-shared (edges dropped)", info.Class)
	}
}

// TestIteratedParentDegrades: an unjoined spawn under an iterated
// parent has overlapping child instances the one-task model cannot
// represent; every ordering fact must be dropped (degraded), with the
// spawned task still discovered for reachability.
func TestIteratedParentDegrades(t *testing.T) {
	src := strings.Replace(hbForkJoinSrc, "    join h\n", "", 1)
	src = strings.Replace(src, "thread 0 parent iters 1", "thread 0 parent iters 3", 1)
	res := analyzeSrc(t, src, false)
	if !res.HBDegraded() {
		t.Fatal("iterated parent with unjoined spawn did not degrade")
	}
	if len(res.Threads) != 2 {
		t.Fatalf("degraded analysis lost the spawned task: %d threads", len(res.Threads))
	}
	if info := res.Pair("S", 0, 1); info.Class != WriteShared {
		t.Errorf("degraded: Pair(S,a,b) = %v, want write-shared", info.Class)
	}
}

// TestIteratedParentJoinedStaysRefined: joined spawns serialize the
// child instances across parent iterations, so iteration alone must not
// cost the refinement.
func TestIteratedParentJoinedStaysRefined(t *testing.T) {
	src := strings.Replace(hbForkJoinSrc, "thread 0 parent iters 1", "thread 0 parent iters 3", 1)
	res := analyzeSrc(t, src, false)
	if res.HBDegraded() {
		t.Fatal("joined spawn under iteration degraded")
	}
	if info := res.Pair("S", 0, 1); info.Class != NeverShared {
		t.Errorf("iterated joined: Pair(S,a,b) = %v, want never-shared", info.Class)
	}
}

// TestCalleeInheritsSegments: accesses in a procedure *called* from a
// segment inherit the call site's segment, so moving the parent's
// post-join write into a helper keeps the refinement.
func TestCalleeInheritsSegments(t *testing.T) {
	src := `program calleeseg

struct S {
    a i64
    b i64
}

proc parent {
    spawn h 1 child
    join h
    call tail
}

proc tail {
    write S.a shared 0
}

proc child {
    write S.b shared 0
}

arena S 1
thread 0 parent iters 1
`
	res := analyzeSrc(t, src, false)
	if info := res.Pair("S", 0, 1); info.Class != NeverShared {
		t.Errorf("callee after join: Pair(S,a,b) = %v, want never-shared", info.Class)
	}
}

// TestCalleeSpanningSegmentsStaysShared: the same helper called both
// before the spawn and after it (while the child runs) must keep the
// conflict — its segment set spans the boundary.
func TestCalleeSpanningSegmentsStaysShared(t *testing.T) {
	src := `program calleespan

struct S {
    a i64
    b i64
}

proc parent {
    call tail
    spawn h 1 child
    call tail
    join h
}

proc tail {
    write S.a shared 0
}

proc child {
    write S.b shared 0
}

arena S 1
thread 0 parent iters 1
`
	res := analyzeSrc(t, src, false)
	if info := res.Pair("S", 0, 1); info.Class != WriteShared {
		t.Errorf("callee spanning spawn: Pair(S,a,b) = %v, want write-shared", info.Class)
	}
}

// TestSiblingsJoinBetweenOrdered: spawn h1 / join h1 / spawn h2 means
// the two children are serialized through the parent; spawning both
// before either join leaves them concurrent.
func TestSiblingsJoinBetweenOrdered(t *testing.T) {
	serial := `program serialsibs

struct S {
    a i64
    b i64
}

proc parent {
    spawn h1 1 w1
    join h1
    spawn h2 2 w2
    join h2
}

proc w1 {
    write S.a shared 0
}

proc w2 {
    write S.b shared 0
}

arena S 1
thread 0 parent iters 1
`
	res := analyzeSrc(t, serial, false)
	if info := res.Pair("S", 0, 1); info.Class != NeverShared {
		t.Errorf("serialized siblings: Pair(S,a,b) = %v, want never-shared", info.Class)
	}

	parallelSibs := strings.Replace(serial,
		"    spawn h1 1 w1\n    join h1\n    spawn h2 2 w2\n    join h2\n",
		"    spawn h1 1 w1\n    spawn h2 2 w2\n    join h1\n    join h2\n", 1)
	res = analyzeSrc(t, parallelSibs, false)
	if info := res.Pair("S", 0, 1); info.Class != WriteShared {
		t.Errorf("concurrent siblings: Pair(S,a,b) = %v, want write-shared", info.Class)
	}
}

// TestHBExclusiveFeedsMHP: the static-mhp cross-check must consume the
// refined relation — blocks of the parent's pre-spawn segment and the
// child are Exclusive even with no locks anywhere.
func TestHBExclusiveFeedsMHP(t *testing.T) {
	res := analyzeSrc(t, hbForkJoinSrc, false)
	// Find a parent-proc access block and the child's write block.
	var parentBlocks, childBlocks []int
	for i, a := range res.Accesses {
		pr := res.Prog.Block(a.Block).Proc.Name
		switch pr {
		case "parent":
			parentBlocks = append(parentBlocks, i)
		case "child":
			childBlocks = append(childBlocks, i)
		}
	}
	if len(parentBlocks) != 2 || len(childBlocks) != 1 {
		t.Fatalf("unexpected access layout: %d parent, %d child", len(parentBlocks), len(childBlocks))
	}
	for _, pi := range parentBlocks {
		pb := res.Accesses[pi].Block
		cb := res.Accesses[childBlocks[0]].Block
		if !res.Exclusive(pb, cb) {
			t.Errorf("Exclusive(%v, %v) = false, want true (fork/join ordering)", pb, cb)
		}
		if res.MayHappenInParallel(pb, cb) {
			t.Errorf("MayHappenInParallel(%v, %v) = true, want false", pb, cb)
		}
	}
}

// TestSummaryEqualsExactOnHBPrograms extends the differential gate to
// join-aware classification: on every HB-bearing source in this file
// the summary path must be bit-identical to the exact oracle.
func TestSummaryEqualsExactOnHBPrograms(t *testing.T) {
	srcs := map[string]string{
		"forkjoin":  hbForkJoinSrc,
		"pipeline":  hbPipelineSrc,
		"unjoined":  strings.Replace(hbForkJoinSrc, "    join h\n", "", 1),
		"iterated":  strings.Replace(hbForkJoinSrc, "thread 0 parent iters 1", "thread 0 parent iters 3", 1),
		"postsend":  strings.Replace(hbPipelineSrc, "    write S.a shared 0\n    send c\n", "    send c\n    write S.a shared 0\n", 1),
	}
	for name, src := range srcs {
		sum := analyzeSrc(t, src, false)
		exact := analyzeSrc(t, src, true)
		assertPairsEqual(t, name, sum, exact)
	}
}

// assertPairsEqual compares classifications field by field.
func assertPairsEqual(t *testing.T, name string, sum, exact *Result) {
	t.Helper()
	if len(sum.Pairs) != len(exact.Pairs) {
		t.Errorf("%s: summary has %d structs, exact %d", name, len(sum.Pairs), len(exact.Pairs))
		return
	}
	for st, ep := range exact.Pairs {
		sp := sum.Pairs[st]
		if len(sp) != len(ep) {
			t.Errorf("%s/%s: summary has %d pairs, exact %d", name, st, len(sp), len(ep))
			continue
		}
		for k, ev := range ep {
			if sv, ok := sp[k]; !ok || sv != ev {
				t.Errorf("%s/%s %v: summary %+v, exact %+v", name, st, k, sp[k], ev)
			}
		}
	}
}

// hbPairBlocks returns one parent access block and the child's access
// block of the fork/join exemplar.
func hbPairBlocks(t *testing.T, res *Result) (parent, child ir.BlockID) {
	t.Helper()
	found := false
	for _, a := range res.Accesses {
		switch res.Prog.Block(a.Block).Proc.Name {
		case "parent":
			parent = a.Block
			found = true
		case "child":
			child = a.Block
		}
	}
	if !found {
		t.Fatal("no parent access found")
	}
	return parent, child
}

// TestHBSharpensPrior pins that the zero-profile CycleLoss prior
// consumes the happens-before refinement: the joined fork/join program
// floors nothing (the pair is never-shared), while the unjoined variant
// still drives the certain write-shared pair's loss above its gain.
func TestHBSharpensPrior(t *testing.T) {
	mkGraph := func(res *Result) *flg.Graph {
		st := res.Prog.Struct("S")
		return &flg.Graph{
			Struct:  st,
			Gain:    map[[2]int]float64{affinity.PairKey(0, 1): 100},
			Loss:    map[[2]int]float64{},
			Hotness: map[int]float64{},
		}
	}
	joined := analyzeSrc(t, hbForkJoinSrc, false)
	g := mkGraph(joined)
	if pr := joined.ApplyPrior(g, PriorOptions{}); pr.Certain != 0 || pr.Possible != 0 {
		t.Fatalf("joined fork/join floored %d certain / %d possible pairs, want none", pr.Certain, pr.Possible)
	}
	if g.Loss[affinity.PairKey(0, 1)] != 0 {
		t.Fatalf("joined fork/join moved the graph: loss %v", g.Loss[affinity.PairKey(0, 1)])
	}

	unjoined := analyzeSrc(t, strings.Replace(hbForkJoinSrc, "    join h\n", "", 1), false)
	g = mkGraph(unjoined)
	if pr := unjoined.ApplyPrior(g, PriorOptions{}); pr.Certain == 0 {
		t.Fatal("unjoined variant should floor the certain write-shared pair")
	}
	if g.Loss[affinity.PairKey(0, 1)] <= g.Gain[affinity.PairKey(0, 1)] {
		t.Fatalf("unjoined pair: loss %v must exceed gain %v",
			g.Loss[affinity.PairKey(0, 1)], g.Gain[affinity.PairKey(0, 1)])
	}
}

// TestHBSharpensCCCheck pins that the static-mhp cross-check consumes
// the refinement: sampled concurrency mass on a pair the join proves
// exclusive is a contradiction, while the unjoined variant accepts the
// same mass.
func TestHBSharpensCCCheck(t *testing.T) {
	joined := analyzeSrc(t, hbForkJoinSrc, false)
	pb, cb := hbPairBlocks(t, joined)
	cm := &concurrency.Map{CC: map[concurrency.Pair]float64{concurrency.MakePair(pb, cb): 5}}
	chk := joined.CheckCC(cm)
	if chk.ContradictedPairs != 1 || chk.Agreement >= 1 {
		t.Fatalf("joined fork/join: mass on an ordered pair must contradict, got %+v", chk)
	}

	unjoined := analyzeSrc(t, strings.Replace(hbForkJoinSrc, "    join h\n", "", 1), false)
	pb, cb = hbPairBlocks(t, unjoined)
	cm = &concurrency.Map{CC: map[concurrency.Pair]float64{concurrency.MakePair(pb, cb): 5}}
	if chk := unjoined.CheckCC(cm); chk.Agreement != 1 {
		t.Fatalf("unjoined variant: same mass must agree, got %+v", chk)
	}
}

package mhpcheck

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"structlayout/internal/irtext"
)

// checkSrc runs the harness over a DSL source and fails the test on any
// soundness violation.
func checkSrc(t *testing.T, name, src string, opt Options) *Report {
	t.Helper()
	f, err := irtext.Parse(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	rep, err := Check(f, opt)
	if err != nil {
		t.Fatalf("%s: check: %v", name, err)
	}
	if !rep.Ok() {
		t.Errorf("%s: %d soundness violation(s) in %d states:", name, len(rep.Violations), rep.States)
		for _, v := range rep.Violations {
			t.Errorf("  %s: tasks %d/%d blocks %v/%v", v.Kind, v.T1, v.T2, v.B1, v.B2)
		}
		t.Logf("program:\n%s", src)
	}
	return rep
}

// TestGoldens asserts soundness on every committed .slp program: all
// reachable co-enabled block pairs must be admitted by the static MHP
// relation.
func TestGoldens(t *testing.T) {
	var paths []string
	for _, pattern := range []string{
		"../../../examples/lint/*.slp",
		"../../../examples/dslprogram/*.slp",
		"../../driver/testdata/*.slp",
		"../../gofront/testdata/*.slp",
	} {
		m, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, m...)
	}
	sort.Strings(paths)
	if len(paths) < 5 {
		t.Fatalf("found only %d golden .slp programs: %v", len(paths), paths)
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		rep := checkSrc(t, p, string(src), Options{MaxStates: 30000})
		if rep.States == 0 {
			t.Errorf("%s: enumerated zero states", p)
		}
	}
}

// TestForkJoinPrograms drives the harness over the hand-written HB
// exemplars — fork/join, channels, degraded iteration — including the
// shapes where the static relation claims real orderings.
func TestForkJoinPrograms(t *testing.T) {
	srcs := map[string]string{
		"forkjoin": `program forkjoin

struct S {
    a i64
    b i64
}

proc parent {
    write S.a shared 0
    spawn h 1 child
    join h
    write S.a shared 0
}

proc child {
    write S.b shared 0
}

arena S 1
thread 0 parent iters 1
`,
		"pipeline": `program pipeline

struct S {
    a i64
    b i64
}

proc stage1 {
    write S.a shared 0
    send c
}

proc stage2 {
    recv c
    write S.b shared 0
}

arena S 1
thread 0 stage1 iters 1
thread 1 stage2 iters 1
`,
		"crossed-deadlock": `program crossed

struct S {
    a i64
    b i64
}

proc p1 {
    write S.a shared 0
    recv x
    send y
}

proc p2 {
    write S.b shared 0
    recv y
    send x
}

arena S 1
thread 0 p1 iters 1
thread 1 p2 iters 1
`,
		"iterated-joined": `program iterated

struct S {
    a i64
    b i64
}

proc parent {
    write S.a shared 0
    spawn h 1 child
    join h
    write S.a shared 0
}

proc child {
    write S.b shared 0
}

arena S 1
thread 0 parent iters 3
`,
		"siblings": `program siblings

struct S {
    a i64
    b i64
}

proc parent {
    spawn h1 1 w1
    spawn h2 2 w2
    join h1
    join h2
    write S.a shared 0
}

proc w1 {
    write S.a shared 0
}

proc w2 {
    write S.b shared 0
}

arena S 1
thread 0 parent iters 1
`,
		"locked": `program locked

struct S {
    m i64
    a i64
    b i64
}

proc t1 {
    lock S.m shared 0
    write S.a shared 0
    unlock S.m shared 0
}

proc t2 {
    lock S.m shared 0
    write S.b shared 0
    unlock S.m shared 0
}

arena S 1
thread 0 t1 iters 2
thread 1 t2 iters 2
`,
	}
	for name, src := range srcs {
		rep := checkSrc(t, name, src, Options{})
		if rep.States == 0 {
			t.Errorf("%s: enumerated zero states", name)
		}
	}
}

// instStr picks a random instance expression.
func instStr(r *rand.Rand) string {
	switch r.Intn(4) {
	case 0:
		return "shared 0"
	case 1:
		return "shared 1"
	case 2:
		return "percpu"
	default:
		return "param 0"
	}
}

// genProgram builds a random but valid fork/join program: a parent
// interleaving writes, spawns, joins and channel receives over a few
// leaf workers (some of which send), plus an optional flat auxiliary
// thread. The sync discipline (handles unique, join after spawn,
// top-level only, sync procs never called) is respected by
// construction; everything else — join coverage, channel pairing,
// iteration counts, deadlocks — is left to chance, which is exactly
// what the soundness assertion should survive.
func genProgram(r *rand.Rand) string {
	nw := 1 + r.Intn(3)
	var b strings.Builder
	b.WriteString("program gen\n\nstruct S {\n    f0 i64\n    f1 i64\n    f2 i64\n}\n\n")
	workerSend := make([]string, nw)
	for i := 0; i < nw; i++ {
		fmt.Fprintf(&b, "proc w%d {\n", i)
		for j := 0; j < 1+r.Intn(2); j++ {
			fmt.Fprintf(&b, "    write S.f%d %s\n", r.Intn(3), instStr(r))
		}
		if r.Intn(3) == 0 {
			ch := fmt.Sprintf("c%d", i)
			workerSend[i] = ch
			fmt.Fprintf(&b, "    send %s\n", ch)
			if r.Intn(2) == 0 {
				fmt.Fprintf(&b, "    write S.f%d %s\n", r.Intn(3), instStr(r))
			}
		}
		b.WriteString("}\n\n")
	}
	b.WriteString("proc parent {\n")
	var spawned []int
	joined := make(map[int]bool)
	recvd := make(map[int]bool)
	nextWorker := 0
	for a := 0; a < 4+r.Intn(5); a++ {
		switch r.Intn(4) {
		case 0:
			fmt.Fprintf(&b, "    write S.f%d %s\n", r.Intn(3), instStr(r))
		case 1:
			if nextWorker < nw {
				fmt.Fprintf(&b, "    spawn h%d %d w%d", nextWorker, 1+nextWorker, nextWorker)
				if r.Intn(3) == 0 {
					fmt.Fprintf(&b, " params %d", r.Intn(3))
				}
				b.WriteString("\n")
				spawned = append(spawned, nextWorker)
				nextWorker++
			}
		case 2:
			for _, i := range spawned {
				if !joined[i] {
					fmt.Fprintf(&b, "    join h%d\n", i)
					joined[i] = true
					break
				}
			}
		case 3:
			for _, i := range spawned {
				if workerSend[i] != "" && !recvd[i] {
					fmt.Fprintf(&b, "    recv %s\n", workerSend[i])
					recvd[i] = true
					break
				}
			}
		}
	}
	for _, i := range spawned {
		if !joined[i] && r.Intn(2) == 0 {
			fmt.Fprintf(&b, "    join h%d\n", i)
			joined[i] = true
		}
	}
	b.WriteString("}\n\n")
	aux := r.Intn(2) == 0
	if aux {
		b.WriteString("proc aux {\n")
		for j := 0; j < 1+r.Intn(2); j++ {
			fmt.Fprintf(&b, "    write S.f%d %s\n", r.Intn(3), instStr(r))
		}
		b.WriteString("}\n\n")
	}
	fmt.Fprintf(&b, "arena S 2\nthread 0 parent iters %d\n", 1+r.Intn(2))
	if aux {
		fmt.Fprintf(&b, "thread %d aux iters %d\n", 5, 1+r.Intn(2))
	}
	return b.String()
}

// TestGeneratedForkJoin is the property test: many random fork/join
// programs, every reachable co-enabled pair admitted by the static
// relation.
func TestGeneratedForkJoin(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 30
	}
	for seed := 0; seed < n; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		src := genProgram(r)
		checkSrc(t, fmt.Sprintf("seed-%d", seed), src, Options{MaxStates: 40000})
	}
}

// TestRefinementObserved guards against the harness passing vacuously.
// The parent overlaps with the child between spawn and join, so
// co-enabled pairs must be observed — and none may violate the static
// relation. The fully serial fork/join exemplar is the converse check:
// the parent is parked at join whenever the child runs, so the
// enumeration must find NO co-enabled pair at all.
func TestRefinementObserved(t *testing.T) {
	overlap := `program observe

struct S {
    a i64
    b i64
}

proc parent {
    spawn h 1 child
    write S.a shared 0
    join h
    write S.a shared 0
}

proc child {
    write S.b shared 0
}

arena S 1
thread 0 parent iters 1
`
	rep := checkSrc(t, "observe", overlap, Options{})
	if rep.Pairs == 0 {
		t.Fatal("no co-enabled pairs observed: harness is vacuous")
	}
	if rep.Truncated {
		t.Fatal("tiny program truncated")
	}

	serial := `program serialobserve

struct S {
    a i64
    b i64
}

proc parent {
    write S.a shared 0
    spawn h 1 child
    join h
    write S.a shared 0
}

proc child {
    write S.b shared 0
}

arena S 1
thread 0 parent iters 1
`
	rep = checkSrc(t, "serialobserve", serial, Options{})
	if rep.Pairs != 0 {
		t.Fatalf("serial fork/join produced %d co-enabled pairs; parent should be parked at join while the child runs", rep.Pairs)
	}
}

// Package mhpcheck is the soundness harness for the static MHP
// relation: it enumerates, by explicit-state search, every schedule of
// a DSL program's task system — root threads, spawned tasks, join and
// rendezvous blocking, concrete lock contention — and asserts that
// every pair of blocks observed simultaneously enabled is one the
// static analysis admits as may-happen-in-parallel (and, stronger, one
// the happens-before graph does not claim ordered). The static relation
// over-approximates; any reachable counterexample is a soundness bug.
//
// The search is bounded, not a proof: iteration counts clamp to
// MaxIters, the visited-state set caps at MaxStates (the report then
// says Truncated and the assertion covers the explored prefix), and
// schedules the one-task-per-spawn model cannot represent (a respawn
// while the previous instance still runs) block instead of forking a
// second instance — exactly the configurations the analysis degrades
// on. Within those bounds the enumeration is exhaustive: every
// interleaving of instruction-granular steps is visited once.
package mhpcheck

import (
	"fmt"
	"sort"
	"strings"

	"structlayout/internal/ir"
	"structlayout/internal/irtext"
	"structlayout/internal/staticshare"
)

// Options bounds the enumeration.
type Options struct {
	// MaxStates caps the visited-state set; 0 means 1<<17. Exceeding it
	// truncates the search instead of failing.
	MaxStates int
	// MaxIters clamps root-thread iteration counts and loop trip
	// counts; 0 means 2. Clamping preserves the >1 distinction the
	// analysis keys on while keeping the state space finite.
	MaxIters int64
}

func (o Options) maxStates() int {
	if o.MaxStates > 0 {
		return o.MaxStates
	}
	return 1 << 17
}

func (o Options) maxIters() int64 {
	if o.MaxIters > 0 {
		return o.MaxIters
	}
	return 2
}

// Violation is one simultaneously-enabled block pair the static
// relation wrongly proves exclusive or ordered.
type Violation struct {
	T1, T2 int // task indices (into Result.Threads)
	B1, B2 ir.BlockID
	// Kind says which claim broke: "exclusive" (MayHappenInParallel
	// returned false) or "hb-ordered" (HBOrdered claimed the pair).
	Kind string
}

// Report is the enumeration outcome.
type Report struct {
	// States counts distinct visited states; Truncated is set when the
	// search hit MaxStates before exhausting the space.
	States    int
	Truncated bool
	// Pairs counts distinct co-enabled (block, block, task, task)
	// witnesses observed.
	Pairs int
	// Violations lists every broken claim, deterministically ordered.
	Violations []Violation
}

// Ok reports whether every observed pair was admitted by the static
// relation.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// Check analyzes the file statically, enumerates its schedules, and
// cross-asserts the two. The returned error covers analysis failures
// only; soundness breaks land in Report.Violations.
func Check(f *irtext.File, opt Options) (*Report, error) {
	if f == nil || f.Prog == nil {
		return nil, fmt.Errorf("mhpcheck: nil file")
	}
	res, err := staticshare.Analyze(f.Prog, staticshare.FileConfig(f))
	if err != nil {
		return nil, err
	}
	return CheckResult(res, len(f.Threads), opt)
}

// CheckResult runs the enumeration against an existing analysis result.
// roots is the number of declared threads (the leading entries of
// res.Threads; the rest are spawned tasks).
func CheckResult(res *staticshare.Result, roots int, opt Options) (*Report, error) {
	sim, err := compile(res, roots, opt)
	if err != nil {
		return nil, err
	}
	return sim.run(), nil
}

// --- compiled program ---

const (
	kInstr = iota
	kIf
	kLoop
)

// cstep is one unit of the compiled program: an instruction-granular
// step carrying its block (kInstr), a nondeterministic branch (kIf), or
// a counted loop (kLoop). Passive instruction runs collapse into one
// step per block segment; blocks without instructions compile away.
type cstep struct {
	kind  int
	block ir.BlockID
	op    ir.Opcode // OpCompute stands in for a collapsed passive run
	// access marks steps carrying field traffic (OpField runs, lock and
	// unlock operations). Lock-based exclusion claims quantify over
	// field instructions only, so only access-bearing positions
	// participate in the "exclusive" assertion.
	access bool
	// OpLock/OpUnlock:
	lockStruct string
	lockField  int
	lockInst   ir.InstExpr
	// OpCall and OpSpawn:
	callee string
	handle string // OpSpawn, OpJoin
	ch     string // OpSend, OpRecv
	// kLoop / kIf:
	count     int64
	body, alt int // step-list IDs; -1 when absent
}

type simulator struct {
	res   *staticshare.Result
	roots int
	opt   Options
	lists [][]cstep
	entry map[string]int // proc name -> step-list ID
}

func compile(res *staticshare.Result, roots int, opt Options) (*simulator, error) {
	s := &simulator{res: res, roots: roots, opt: opt, entry: make(map[string]int)}
	for _, pr := range res.Prog.Procs {
		s.entry[pr.Name] = s.compileNodes(pr.Tree)
	}
	return s, nil
}

func (s *simulator) compileNodes(nodes []ir.ExecNode) int {
	var out []cstep
	for _, n := range nodes {
		switch n := n.(type) {
		case *ir.ExecBlock:
			if n.Block != nil {
				out = append(out, s.compileBlock(n.Block)...)
			}
		case *ir.ExecLoop:
			body := s.compileNodes(n.Body)
			out = append(out, cstep{kind: kLoop, count: n.Count, body: body, alt: -1})
		case *ir.ExecIf:
			then := s.compileNodes(n.Then)
			els := s.compileNodes(n.Else)
			out = append(out, cstep{kind: kIf, body: then, alt: els})
		}
	}
	id := len(s.lists)
	s.lists = append(s.lists, out)
	return id
}

// compileBlock splits a block's instructions into steps: one per
// semantic operation (locks, calls, sync), passive runs collapsed into
// a single step so the block still registers as "current".
func (s *simulator) compileBlock(b *ir.BasicBlock) []cstep {
	var out []cstep
	passive, passiveAccess := false, false
	flush := func() {
		if passive {
			out = append(out, cstep{kind: kInstr, block: b.Global, op: ir.OpCompute, access: passiveAccess, body: -1, alt: -1})
			passive, passiveAccess = false, false
		}
	}
	for _, in := range b.Instrs {
		switch in.Op {
		case ir.OpLock, ir.OpUnlock:
			flush()
			st := ""
			if in.Struct != nil {
				st = in.Struct.Name
			}
			out = append(out, cstep{kind: kInstr, block: b.Global, op: in.Op, access: true,
				lockStruct: st, lockField: in.Field, lockInst: in.Inst, body: -1, alt: -1})
		case ir.OpCall:
			flush()
			out = append(out, cstep{kind: kInstr, block: b.Global, op: in.Op, callee: in.Callee, body: -1, alt: -1})
		case ir.OpSpawn:
			flush()
			out = append(out, cstep{kind: kInstr, block: b.Global, op: in.Op, callee: in.Callee, handle: in.Handle, body: -1, alt: -1})
		case ir.OpJoin:
			flush()
			out = append(out, cstep{kind: kInstr, block: b.Global, op: in.Op, handle: in.Handle, body: -1, alt: -1})
		case ir.OpSend, ir.OpRecv:
			flush()
			out = append(out, cstep{kind: kInstr, block: b.Global, op: in.Op, ch: in.Chan, body: -1, alt: -1})
		default:
			passive = true
			if in.Op == ir.OpField {
				passiveAccess = true
			}
		}
	}
	flush()
	return out
}

// --- dynamic state ---

type frame struct {
	list int
	idx  int
	rem  int64 // loop iterations remaining (1 for plain frames)
}

const (
	statusIdle = iota // spawned task not yet started
	statusRun
	statusDone
)

type taskState struct {
	status int
	stack  []frame
}

type simState struct {
	tasks []taskState
	locks map[string]int // resolved lock instance -> holding task
}

func (st *simState) clone() *simState {
	out := &simState{tasks: make([]taskState, len(st.tasks)), locks: make(map[string]int, len(st.locks))}
	for i, t := range st.tasks {
		out.tasks[i] = taskState{status: t.status, stack: append([]frame(nil), t.stack...)}
	}
	for k, v := range st.locks {
		out.locks[k] = v
	}
	return out
}

func (st *simState) encode() string {
	var b strings.Builder
	for _, t := range st.tasks {
		fmt.Fprintf(&b, "%d:", t.status)
		for _, f := range t.stack {
			fmt.Fprintf(&b, "%d.%d.%d,", f.list, f.idx, f.rem)
		}
		b.WriteByte('|')
	}
	keys := make([]string, 0, len(st.locks))
	for k := range st.locks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d;", k, st.locks[k])
	}
	return b.String()
}

// cur returns the task's current step, nil when it cannot be at one
// (finished, idle, or empty stack).
func (s *simulator) cur(st *simState, t int) *cstep {
	ts := &st.tasks[t]
	if ts.status != statusRun || len(ts.stack) == 0 {
		return nil
	}
	f := ts.stack[len(ts.stack)-1]
	return &s.lists[f.list][f.idx]
}

// normalize resolves a task's position to the next kInstr or kIf step:
// unwinds exhausted frames (decrementing loop counters), expands loops,
// and marks the task done when its stack empties.
func (s *simulator) normalize(st *simState, t int) {
	ts := &st.tasks[t]
	for ts.status == statusRun {
		if len(ts.stack) == 0 {
			ts.status = statusDone
			return
		}
		f := &ts.stack[len(ts.stack)-1]
		if f.idx >= len(s.lists[f.list]) {
			if f.rem > 1 {
				f.rem--
				f.idx = 0
				continue
			}
			ts.stack = ts.stack[:len(ts.stack)-1]
			continue
		}
		step := &s.lists[f.list][f.idx]
		if step.kind == kLoop {
			count := step.count
			if count > s.opt.maxIters() {
				count = s.opt.maxIters()
			}
			f.idx++ // resume past the loop when the body frame pops
			if count > 0 {
				ts.stack = append(ts.stack, frame{list: step.body, idx: 0, rem: count})
			}
			continue
		}
		return // kInstr or kIf: a schedulable position
	}
}

// lockKey resolves a lock operand for a task; ok is false when the
// instance is unknown or a sweep (untracked — the static analysis never
// claims exclusion from those either).
func (s *simulator) lockKey(t int, c *cstep) (string, bool) {
	if c.lockStruct == "" {
		return "", false
	}
	idx, known, sweep := s.res.ResolveInst(t, c.lockStruct, c.lockInst)
	if !known || sweep {
		return "", false
	}
	return fmt.Sprintf("%s.%d@%d", c.lockStruct, c.lockField, idx), true
}

// enabled reports whether task t can take a step in st.
func (s *simulator) enabled(st *simState, t int) bool {
	c := s.cur(st, t)
	if c == nil {
		return false
	}
	if c.kind == kIf {
		return true
	}
	switch c.op {
	case ir.OpLock:
		k, ok := s.lockKey(t, c)
		if !ok {
			return true
		}
		_, held := st.locks[k]
		return !held
	case ir.OpSpawn:
		child, ok := s.res.SpawnedTask(t, c.handle)
		return ok && st.tasks[child].status != statusRun
	case ir.OpJoin:
		child, ok := s.res.SpawnedTask(t, c.handle)
		return ok && st.tasks[child].status == statusDone
	case ir.OpSend:
		return s.rendezvousPeers(st, t, c.ch, ir.OpRecv) != nil
	case ir.OpRecv:
		return s.rendezvousPeers(st, t, c.ch, ir.OpSend) != nil
	}
	return true
}

// rendezvousPeers returns the tasks currently parked at the matching
// endpoint of the channel.
func (s *simulator) rendezvousPeers(st *simState, self int, ch string, want ir.Opcode) []int {
	var peers []int
	for t := range st.tasks {
		if t == self {
			continue
		}
		c := s.cur(st, t)
		if c != nil && c.kind == kInstr && c.op == want && c.ch == ch {
			peers = append(peers, t)
		}
	}
	return peers
}

// advance moves task t past its current step and renormalizes.
func (s *simulator) advance(st *simState, t int) {
	ts := &st.tasks[t]
	ts.stack[len(ts.stack)-1].idx++
	s.normalize(st, t)
}

// successors generates every state reachable from st in one step of
// task t (the caller guarantees enabled). Rendezvous transitions are
// generated from the send side only; the recv side yields nothing (the
// joint step is the same transition).
func (s *simulator) successors(st *simState, t int) []*simState {
	c := s.cur(st, t)
	if c.kind == kIf {
		var out []*simState
		for _, branch := range []int{c.body, c.alt} {
			n := st.clone()
			ts := &n.tasks[t]
			ts.stack[len(ts.stack)-1].idx++
			if branch >= 0 && len(s.lists[branch]) > 0 {
				ts.stack = append(ts.stack, frame{list: branch, idx: 0, rem: 1})
			}
			s.normalize(n, t)
			out = append(out, n)
		}
		return out
	}
	switch c.op {
	case ir.OpLock:
		n := st.clone()
		if k, ok := s.lockKey(t, c); ok {
			n.locks[k] = t
		}
		s.advance(n, t)
		return []*simState{n}
	case ir.OpUnlock:
		n := st.clone()
		if k, ok := s.lockKey(t, c); ok {
			if holder, held := n.locks[k]; held && holder == t {
				delete(n.locks, k)
			}
		}
		s.advance(n, t)
		return []*simState{n}
	case ir.OpCall:
		n := st.clone()
		ts := &n.tasks[t]
		ts.stack[len(ts.stack)-1].idx++
		if id, ok := s.entry[c.callee]; ok && len(s.lists[id]) > 0 {
			ts.stack = append(ts.stack, frame{list: id, idx: 0, rem: 1})
		}
		s.normalize(n, t)
		return []*simState{n}
	case ir.OpSpawn:
		child, _ := s.res.SpawnedTask(t, c.handle)
		n := st.clone()
		id := s.entry[s.res.Threads[child].Proc]
		n.tasks[child] = taskState{status: statusRun, stack: []frame{{list: id, idx: 0, rem: 1}}}
		s.normalize(n, child)
		s.advance(n, t)
		return []*simState{n}
	case ir.OpSend:
		var out []*simState
		for _, peer := range s.rendezvousPeers(st, t, c.ch, ir.OpRecv) {
			n := st.clone()
			s.advance(n, t)
			s.advance(n, peer)
			out = append(out, n)
		}
		return out
	case ir.OpRecv:
		return nil // the matching send generates the joint transition
	default: // passive, join
		n := st.clone()
		s.advance(n, t)
		return []*simState{n}
	}
}

// --- enumeration ---

type witness struct {
	t1, t2 int
	b1, b2 ir.BlockID
	// access: both positions carried field traffic, so the pair is in
	// scope for lock-based exclusion claims.
	access bool
}

func (s *simulator) run() *Report {
	rep := &Report{}
	init := &simState{tasks: make([]taskState, len(s.res.Threads)), locks: map[string]int{}}
	for i := range s.res.Threads {
		if i < s.roots {
			iters := s.res.Threads[i].Iters
			if iters <= 0 {
				iters = 1
			}
			if iters > s.opt.maxIters() {
				iters = s.opt.maxIters()
			}
			id := s.entry[s.res.Threads[i].Proc]
			init.tasks[i] = taskState{status: statusRun, stack: []frame{{list: id, idx: 0, rem: iters}}}
			s.normalize(init, i)
		} else {
			init.tasks[i] = taskState{status: statusIdle}
		}
	}

	visited := make(map[string]bool)
	seenPairs := make(map[witness]bool)
	queue := []*simState{init}
	visited[init.encode()] = true
	for len(queue) > 0 {
		st := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		rep.States++

		// Record every co-enabled block pair.
		var en []int
		for t := range st.tasks {
			if s.enabled(st, t) {
				en = append(en, t)
			}
		}
		for i := 0; i < len(en); i++ {
			for j := i + 1; j < len(en); j++ {
				t1, t2 := en[i], en[j]
				c1, c2 := s.cur(st, t1), s.cur(st, t2)
				if c1.kind != kInstr || c2.kind != kInstr {
					continue // branch points carry no block
				}
				w := witness{t1, t2, c1.block, c2.block, c1.access && c2.access}
				seenPairs[w] = true
			}
		}

		if len(visited) >= s.opt.maxStates() {
			rep.Truncated = true
			break
		}
		for _, t := range en {
			for _, n := range s.successors(st, t) {
				key := n.encode()
				if !visited[key] {
					visited[key] = true
					queue = append(queue, n)
				}
			}
		}
	}

	rep.Pairs = len(seenPairs)
	ws := make([]witness, 0, len(seenPairs))
	for w := range seenPairs {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool {
		a, b := ws[i], ws[j]
		if a.b1 != b.b1 {
			return a.b1 < b.b1
		}
		if a.b2 != b.b2 {
			return a.b2 < b.b2
		}
		if a.t1 != b.t1 {
			return a.t1 < b.t1
		}
		if a.t2 != b.t2 {
			return a.t2 < b.t2
		}
		return !a.access && b.access
	})
	emitted := make(map[Violation]bool)
	for _, w := range ws {
		// Lock-based exclusion quantifies over field instructions, so
		// only access-bearing witnesses are in scope for the Exclusive
		// claim; the happens-before claim covers every position.
		if w.access && !s.res.MayHappenInParallel(w.b1, w.b2) {
			v := Violation{T1: w.t1, T2: w.t2, B1: w.b1, B2: w.b2, Kind: "exclusive"}
			if !emitted[v] {
				emitted[v] = true
				rep.Violations = append(rep.Violations, v)
			}
		}
		if s.res.HBOrdered(w.t1, w.b1, w.t2, w.b2) {
			v := Violation{T1: w.t1, T2: w.t2, B1: w.b1, B2: w.b2, Kind: "hb-ordered"}
			if !emitted[v] {
				emitted[v] = true
				rep.Violations = append(rep.Violations, v)
			}
		}
	}
	return rep
}

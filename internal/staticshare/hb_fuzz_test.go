package staticshare

import (
	"testing"

	"structlayout/internal/ir"
	"structlayout/internal/irtext"
)

// FuzzHB throws arbitrary DSL sources at the happens-before layer and
// asserts its structural invariants on everything that parses: the HB
// graph is acyclic, block-level MHP is symmetric, and per-task ordering
// is symmetric in its arguments and irreflexive on identical positions.
func FuzzHB(f *testing.F) {
	f.Add(hbForkJoinSrc)
	f.Add(hbPipelineSrc)
	f.Add(`program crossed

struct S {
    a i64
    b i64
}

proc p1 {
    write S.a shared 0
    recv x
    send y
}

proc p2 {
    write S.b shared 0
    recv y
    send x
}

arena S 1
thread 0 p1 iters 1
thread 1 p2 iters 1
`)
	f.Add(`program siblings

struct S {
    a i64
    b i64
}

proc parent {
    spawn h1 1 w1
    join h1
    spawn h2 2 w2
    join h2
    write S.a shared 0
}

proc w1 {
    write S.a shared 0
}

proc w2 {
    write S.b shared 0
}

arena S 1
thread 0 parent iters 2
`)
	f.Add(`program unjoined

struct S {
    a i64
}

proc parent {
    spawn h 1 child
    write S.a shared 0
}

proc child {
    write S.a shared 0
}

arena S 1
thread 0 parent iters 2
`)
	f.Fuzz(func(t *testing.T, src string) {
		file, err := irtext.Parse(src)
		if err != nil {
			return
		}
		res, err := Analyze(file.Prog, FileConfig(file))
		if err != nil {
			return
		}
		if !res.HBAcyclic() {
			t.Fatalf("happens-before graph has a cycle")
		}
		nb := res.Prog.NumBlocks()
		if nb > 24 {
			nb = 24
		}
		nt := len(res.Threads)
		if nt > 6 {
			nt = 6
		}
		for b1 := 0; b1 < nb; b1++ {
			for b2 := 0; b2 < nb; b2++ {
				p, q := ir.BlockID(b1), ir.BlockID(b2)
				if res.MayHappenInParallel(p, q) != res.MayHappenInParallel(q, p) {
					t.Fatalf("MHP asymmetric on blocks %d, %d", b1, b2)
				}
				for t1 := 0; t1 < nt; t1++ {
					for t2 := 0; t2 < nt; t2++ {
						if res.HBOrdered(t1, p, t2, q) != res.HBOrdered(t2, q, t1, p) {
							t.Fatalf("HBOrdered asymmetric: tasks %d/%d blocks %d/%d", t1, t2, b1, b2)
						}
						if t1 == t2 && b1 == b2 && res.HBOrdered(t1, p, t2, q) {
							t.Fatalf("HBOrdered reflexive on task %d block %d", t1, b1)
						}
					}
				}
			}
		}
	})
}

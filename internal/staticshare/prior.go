package staticshare

import (
	"fmt"
	"sort"
	"strings"

	"structlayout/internal/affinity"
	"structlayout/internal/flg"
)

// PriorOptions tunes how the static classification blends into an FLG as
// a CycleLoss prior.
type PriorOptions struct {
	// MarginFrac sizes the safety margin forced onto statically-certain
	// write-shared pairs, as a fraction of the graph's largest absolute
	// gain: their net weight is driven at least that far negative, so the
	// clusterer (which only merges strictly positive weights) never
	// co-locates them and the packer keeps their clusters on separate
	// lines. Default 0.01.
	MarginFrac float64
	// Discount scales the loss charged to possible-but-uncertain
	// write-shared pairs (unknown parameter bindings): loss grows by
	// Discount × gain, shrinking the attraction without forbidding
	// co-location. Default 0.5.
	Discount float64
}

func (o *PriorOptions) fill() {
	if o.MarginFrac <= 0 {
		o.MarginFrac = 0.01
	}
	if o.Discount <= 0 {
		o.Discount = 0.5
	}
}

// PriorResult summarizes one ApplyPrior call.
type PriorResult struct {
	// Certain counts write-shared pairs whose net weight was forced
	// negative; Possible counts uncertain pairs whose gain was
	// discounted.
	Certain  int
	Possible int
}

// ApplyPrior blends the static sharing classification into the FLG: the
// zero-profile CycleLoss stand-in for runs whose sampled trace is missing
// or degraded. Statically-certain write-shared pairs get their loss
// floored above their gain (they must never share a cache line — exactly
// what a perfect trace would have charged them); possible write conflicts
// get a discounted gain. Read-shared, lock-serialized and never-shared
// pairs are left untouched: the paper's machinery already handles them.
func (r *Result) ApplyPrior(g *flg.Graph, opts PriorOptions) PriorResult {
	opts.fill()
	var out PriorResult
	if g == nil || g.Struct == nil {
		return out
	}
	pairs := r.Pairs[g.Struct.Name]
	if len(pairs) == 0 {
		return out
	}
	maxGain := 0.0
	for _, v := range g.Gain {
		if v > maxGain {
			maxGain = v
		} else if -v > maxGain {
			maxGain = -v
		}
	}
	margin := 1e-6 + opts.MarginFrac*maxGain
	keys := make([][2]int, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	nf := g.Struct.NumFields()
	for _, k := range keys {
		info := pairs[k]
		if info.Class != WriteShared || k[0] >= nf || k[1] >= nf {
			continue
		}
		key := affinity.PairKey(k[0], k[1])
		if info.Certain {
			if floor := g.Gain[key] + margin; g.Loss[key] < floor {
				g.Loss[key] = floor
			}
			out.Certain++
		} else if gain := g.Gain[key]; gain > 0 {
			g.Loss[key] += opts.Discount * gain
			out.Possible++
		}
	}
	return out
}

// StructSummary is the per-struct digest the report renders.
type StructSummary struct {
	Struct string
	// Counts indexes pair tallies by PairClass.
	Counts [4]int
	// CertainPairs lists statically-certain write-shared field-name
	// pairs, sorted.
	CertainPairs [][2]string
	// Prior, when non-nil, records that the static prior was blended
	// into this struct's FLG.
	Prior *PriorResult
}

// Summary digests the classification for one struct, nil when the struct
// has no classified pairs.
func (r *Result) Summary(structName string) *StructSummary {
	pairs := r.Pairs[structName]
	if len(pairs) == 0 {
		return nil
	}
	st := r.Prog.Struct(structName)
	s := &StructSummary{Struct: structName}
	keys := make([][2]int, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		info := pairs[k]
		s.Counts[info.Class]++
		if info.Class == WriteShared && info.Certain && st != nil &&
			k[0] < len(st.Fields) && k[1] < len(st.Fields) {
			s.CertainPairs = append(s.CertainPairs, [2]string{st.Fields[k[0]].Name, st.Fields[k[1]].Name})
		}
	}
	return s
}

// String renders the summary for the report.
func (s *StructSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "struct %s: %d write-shared (%d certain), %d lock-serialized, %d read-shared pairs\n",
		s.Struct, s.Counts[WriteShared], len(s.CertainPairs), s.Counts[LockSerialized], s.Counts[ReadShared])
	for _, p := range s.CertainPairs {
		fmt.Fprintf(&b, "  certain write-shared: %s / %s\n", p[0], p[1])
	}
	if s.Prior != nil {
		fmt.Fprintf(&b, "  static prior applied: %d pairs forced apart, %d discounted\n", s.Prior.Certain, s.Prior.Possible)
	}
	return b.String()
}

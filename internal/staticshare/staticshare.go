// Package staticshare implements a zero-profile static sharing analysis
// over the IR: a may-happen-in-parallel (MHP) relation between basic
// blocks, a thread-instance footprint for every field-touching
// instruction, and a per-field-pair sharing classification
// (never-shared, read-shared, write-shared, lock-serialized).
//
// The paper's CycleLoss is purely dynamic — sampled CodeConcurrency (§4)
// decides which block pairs ran concurrently — so when traces are empty
// or the quality gate grades the collection DEGRADED, the pipeline falls
// back to affinity-only layouts with no false-sharing protection at all.
// This analysis recovers a conservative static prior for exactly that
// regime: an instruction's instance expression plus the thread
// declarations decide whether two accesses can touch the same instance
// from different threads, the definitely-held lock sets (internal/locks)
// decide whether a common shared lock serializes them, and any remaining
// write conflict is statically certain false sharing if the layout
// co-locates the two fields.
//
// Three consumers sit on top: a CycleLoss prior blended into the FLG when
// the trace is missing or degraded (prior.go), a structure-layout linter
// (lint.go), and a cross-check that flags sampled CC mass on block pairs
// the MHP relation proves exclusive — a measurement-quality signal the
// dynamic pipeline feeds into internal/quality.
package staticshare

import (
	"errors"
	"fmt"
	"sort"

	"structlayout/internal/concurrency"
	"structlayout/internal/ir"
	"structlayout/internal/irtext"
	"structlayout/internal/locks"
)

// Thread describes one runtime thread for the analysis: the CPU it is
// pinned to (resolves percpu instance expressions), its entry procedure,
// its parameter vector (resolves param instance expressions; nil means the
// bindings are unknown and param-derived instances are treated as
// possibly-overlapping), and its top-level iteration count (weights static
// frequencies).
type Thread struct {
	CPU    int
	Proc   string
	Params []int
	Iters  int64
}

// Config parameterizes Analyze.
type Config struct {
	// Threads are the declared runtime threads. With no threads the
	// analysis still runs (lock-discipline facts remain useful) but no
	// sharing can be proven: nothing executes.
	Threads []Thread
	// Arenas maps struct name to instance count, when known. Instance
	// indices compare modulo the count, matching the interpreter's
	// resolution. Structs without an entry have a statically unknown
	// count (the go/ast frontend routinely produces these): equal raw
	// indices still must-overlap (i mod n == i mod n for every n), but
	// distinct raw indices only may-overlap — with an unknown count any
	// two indices can alias (0 and 8 collide at any count dividing 8),
	// so distinctness is never provable. DSL files never hit this path:
	// FileConfig fills the interpreter's one-instance default for
	// accessed-but-undeclared structs.
	Arenas map[string]int
	// ExactClassify selects the original O(accesses²) per-access-pair
	// classification walk instead of the summary-based path. The two are
	// bit-identical by construction (the differential tests pin it);
	// the exact walk survives only as the oracle for those tests and the
	// golint-bench baseline stage.
	ExactClassify bool
}

// FileConfig derives the analysis configuration from a parsed DSL file:
// the declared arenas and threads, plus the interpreter's one-instance
// default for structs the program declares but the file allocates no
// arena for (driver.Run resolves their indices modulo 1, so the static
// pass must too — leaving the count unknown would degrade provable
// overlaps to may-overlaps the interpreter contradicts).
func FileConfig(f *irtext.File) Config {
	cfg := Config{Arenas: make(map[string]int, len(f.Arenas))}
	for name, n := range f.Arenas {
		cfg.Arenas[name] = n
	}
	if f.Prog != nil {
		for _, st := range f.Prog.Structs {
			if _, ok := cfg.Arenas[st.Name]; !ok {
				cfg.Arenas[st.Name] = 1
			}
		}
	}
	for _, td := range f.Threads {
		cfg.Threads = append(cfg.Threads, Thread{
			CPU:    td.CPU,
			Proc:   td.Proc,
			Params: append([]int(nil), td.Params...),
			Iters:  td.Iters,
		})
	}
	return cfg
}

// Footprint classifies how an access's instance expression maps the
// reaching threads onto struct instances.
type Footprint uint8

const (
	// FootShared: a fixed instance index — one runtime object for all
	// threads that reach the access.
	FootShared Footprint = iota
	// FootPerCPU: the executing CPU's own instance.
	FootPerCPU
	// FootPerThread: param-derived and provably distinct across the
	// reaching threads (every thread binds a different instance).
	FootPerThread
	// FootParam: param-derived with unknown or overlapping bindings.
	FootParam
	// FootSweep: loop-variable derived — the access sweeps the whole
	// arena, touching every instance.
	FootSweep
)

// String renders the footprint kind.
func (f Footprint) String() string {
	switch f {
	case FootShared:
		return "shared"
	case FootPerCPU:
		return "per-cpu"
	case FootPerThread:
		return "per-thread"
	case FootParam:
		return "param"
	case FootSweep:
		return "sweep"
	default:
		return "?"
	}
}

// Access is one field-touching instruction with its static facts.
type Access struct {
	// Block and Seq locate the instruction: Seq indexes the block's
	// FieldInstrs, matching the lock analysis and the FMF.
	Block ir.BlockID
	Seq   int
	// Struct and Field name the member touched; Write covers stores and
	// lock/unlock operations (both are read-modify-write traffic).
	Struct *ir.StructType
	Field  int
	Write  bool
	IsLock bool
	// Inst is the instance expression; Foot its resolved footprint.
	Inst ir.InstExpr
	Foot Footprint
	// Threads lists (as indices into Config.Threads, sorted) the threads
	// whose execution can reach this instruction.
	Threads []int
	// Held is the definitely-held lock set, nil when the lock analysis
	// degraded or no lock is provably held.
	Held []locks.Key
	// Freq is the static execution-frequency estimate: loop trip counts ×
	// branch probabilities × interprocedural call-site frequency ×
	// thread iteration counts.
	Freq float64

	// segKey canonically encodes the happens-before segments this
	// access's block can execute in, per reaching thread ("" without
	// sync statements); part of the conflict signature.
	segKey string
}

// PairClass is the static sharing classification of a field pair, ordered
// by severity so aggregation can take the maximum.
type PairClass uint8

const (
	// NeverShared: no two distinct threads can touch the two fields of a
	// common instance at all.
	NeverShared PairClass = iota
	// ReadShared: distinct threads can touch a common instance, but every
	// concurrent combination is read/read.
	ReadShared
	// LockSerialized: conflicting combinations exist, but each is
	// serialized by a lock both sides provably hold on the same instance.
	LockSerialized
	// WriteShared: distinct threads can access a common instance with at
	// least one write and no common lock — the false-sharing class.
	WriteShared
)

// String renders the class.
func (c PairClass) String() string {
	switch c {
	case NeverShared:
		return "never-shared"
	case ReadShared:
		return "read-shared"
	case LockSerialized:
		return "lock-serialized"
	case WriteShared:
		return "write-shared"
	default:
		return "?"
	}
}

// PairInfo is the aggregated verdict for one (canonically ordered) field
// pair of a struct.
type PairInfo struct {
	Class PairClass
	// Certain is set when a WriteShared verdict rests on a must-overlap:
	// the two instance expressions provably resolve to the same instance
	// for some pair of distinct threads. May-overlaps (unknown parameter
	// bindings) leave Certain false.
	Certain bool
	// Weight ranks the pair: the static co-execution frequency summed
	// over the conflicting access pairs.
	Weight float64
	// A1, A2 index Result.Accesses: the strongest evidence pair.
	A1, A2 int
}

// Result is the analysis outcome.
type Result struct {
	Prog    *ir.Program
	Cfg     Config
	Threads []Thread
	// Locks is the lock analysis, nil when it degraded; LocksErr then
	// carries the reason and exclusion facts are conservatively absent.
	Locks    *locks.Info
	LocksErr error
	// Accesses lists every field-touching instruction reached by at
	// least the program text (whether or not any thread reaches it).
	Accesses []Access
	// Pairs maps struct name → canonical field pair → verdict. Pairs
	// absent from the inner map are NeverShared.
	Pairs map[string]map[[2]int]PairInfo

	byStruct  map[string][]int // struct name -> indices into Accesses
	reach     map[string][]int // proc name -> sorted thread indices
	procFreq  map[string]float64
	summaries map[string]*ProcSummary // summary path only; nil under ExactClassify
	hb        *hbState                // happens-before graph; nil without sync statements
}

// Analyze runs the full analysis. Damaged inputs degrade instead of
// panicking: a failed lock analysis leaves Locks nil (no exclusion
// facts), and any internal inconsistency surfaces as an error — the same
// contract internal/core applies to the trace and FMF fallbacks.
func Analyze(p *ir.Program, cfg Config) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("staticshare: analysis failed on damaged program: %v", r)
		}
	}()
	if p == nil {
		return nil, errors.New("staticshare: nil program")
	}
	for _, t := range cfg.Threads {
		if p.Proc(t.Proc) == nil {
			return nil, fmt.Errorf("staticshare: thread entry procedure %q not in program", t.Proc)
		}
	}
	r := &Result{
		Prog:     p,
		Cfg:      cfg,
		Threads:  append([]Thread(nil), cfg.Threads...),
		Pairs:    make(map[string]map[[2]int]PairInfo),
		byStruct: make(map[string][]int),
		reach:    make(map[string][]int),
		procFreq: make(map[string]float64),
	}
	// Task discovery extends Threads with spawned children, so it must
	// precede every propagation that seeds from the thread list.
	if err := r.discoverTasks(); err != nil {
		return nil, err
	}
	r.buildHB()
	r.computeReach()
	localFreq := r.computeFreq()

	// Lock analysis, graceful: a damaged program costs exclusion facts,
	// not the whole analysis.
	entries := make([]string, 0, len(r.Threads))
	seen := make(map[string]bool)
	for _, t := range r.Threads {
		if !seen[t.Proc] {
			seen[t.Proc] = true
			entries = append(entries, t.Proc)
		}
	}
	sort.Strings(entries)
	if li, lerr := locks.Analyze(p, entries); lerr != nil {
		r.LocksErr = lerr
	} else {
		r.Locks = li
	}

	r.collectAccesses(localFreq)
	if cfg.ExactClassify {
		r.classifyExact()
	} else {
		r.classifySummary(localFreq)
	}
	return r, nil
}

// walkFreq accumulates per-entry block frequencies over the execution
// tree, mirroring the interpreter's counting: loop headers run count+1
// times per entry, branch arms scale by probability, joins run once.
func walkFreq(nodes []ir.ExecNode, f float64, out map[ir.BlockID]float64) {
	for _, n := range nodes {
		switch n := n.(type) {
		case *ir.ExecBlock:
			if n.Block != nil {
				out[n.Block.Global] += f
			}
		case *ir.ExecLoop:
			if n.Loop != nil && n.Loop.Header != nil {
				out[n.Loop.Header.Global] += f * float64(n.Count+1)
			}
			walkFreq(n.Body, f*float64(n.Count), out)
		case *ir.ExecIf:
			if n.Cond != nil {
				out[n.Cond.Global] += f
			}
			walkFreq(n.Then, f*n.Prob, out)
			walkFreq(n.Else, f*(1-n.Prob), out)
			if n.Join != nil {
				out[n.Join.Global] += f
			}
		}
	}
}

// collectAccesses records every field-touching instruction with its
// reaching threads, held locks, footprint and frequency.
func (r *Result) collectAccesses(local map[ir.BlockID]float64) {
	for _, pr := range r.Prog.Procs {
		threads := r.reach[pr.Name]
		pf := r.procFreq[pr.Name]
		for _, b := range pr.Blocks {
			seq := 0
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpField, ir.OpLock, ir.OpUnlock:
					if in.Struct == nil {
						seq++
						continue
					}
					a := Access{
						Block:   b.Global,
						Seq:     seq,
						Struct:  in.Struct,
						Field:   in.Field,
						Write:   in.Acc == ir.Write || in.Op != ir.OpField,
						IsLock:  in.Op != ir.OpField,
						Inst:    in.Inst,
						Threads: threads,
						Freq:    pf * local[b.Global],
					}
					if r.Locks != nil {
						a.Held = r.Locks.HeldAt(b.Global, seq)
					}
					a.segKey = r.segKeyOf(threads, b.Global)
					a.Foot = r.footprint(a)
					r.byStruct[in.Struct.Name] = append(r.byStruct[in.Struct.Name], len(r.Accesses))
					r.Accesses = append(r.Accesses, a)
					seq++
				}
			}
		}
	}
}

// footprint resolves the access's instance expression against the
// reaching threads.
func (r *Result) footprint(a Access) Footprint {
	switch a.Inst.Kind {
	case ir.InstShared:
		return FootShared
	case ir.InstPerCPU:
		return FootPerCPU
	case ir.InstLoopVar:
		return FootSweep
	case ir.InstParam:
		if len(a.Threads) > 1 && !r.counted(a.Struct.Name) {
			// Distinct raw bindings prove nothing without an instance
			// count: any two indices may alias modulo the real count.
			return FootParam
		}
		seen := make(map[int]bool, len(a.Threads))
		for _, ti := range a.Threads {
			idx, known, _ := r.resolveInst(ti, a.Struct.Name, a.Inst)
			if !known {
				return FootParam
			}
			if seen[idx] {
				return FootParam // two threads bind the same instance
			}
			seen[idx] = true
		}
		return FootPerThread
	default:
		return FootParam
	}
}

// resolveInst resolves an instance expression for thread ti (an index
// into Threads). known is false when the expression depends on an unbound
// parameter; sweep is true for loop-variable expressions (the access
// ranges over the whole arena). Indices reduce modulo the arena count
// when one is declared, matching the interpreter.
func (r *Result) resolveInst(ti int, structName string, e ir.InstExpr) (idx int, known, sweep bool) {
	switch e.Kind {
	case ir.InstShared:
		idx, known = e.Index, true
	case ir.InstPerCPU:
		idx, known = r.Threads[ti].CPU, true
	case ir.InstParam:
		p := r.Threads[ti].Params
		if e.Index < 0 || e.Index >= len(p) {
			return 0, false, false
		}
		idx, known = p[e.Index], true
	case ir.InstLoopVar:
		return 0, false, true
	}
	if n := r.Cfg.Arenas[structName]; n > 0 {
		idx = ((idx % n) + n) % n
	}
	return idx, known, false
}

// ResolveInst exposes instance resolution for the mhpcheck interleaving
// harness, which must model lock instances exactly the way the static
// exclusion proofs resolve them.
func (r *Result) ResolveInst(ti int, structName string, e ir.InstExpr) (idx int, known, sweep bool) {
	return r.resolveInst(ti, structName, e)
}

// counted reports whether the struct's instance count is statically
// known. Distinctness proofs (ovNo, FootPerThread) are only sound with a
// count: two raw indices that differ still collide modulo any count that
// divides their difference.
func (r *Result) counted(structName string) bool {
	return r.Cfg.Arenas[structName] > 0
}

// overlapKind is the instance-overlap lattice for one thread pair.
type overlapKind uint8

const (
	ovNo overlapKind = iota
	ovMay
	ovMust
)

// overlap decides whether accesses a1 (on thread t1) and a2 (on thread
// t2) can touch the same struct instance.
func (r *Result) overlap(t1 int, a1 *Access, t2 int, a2 *Access) overlapKind {
	i1, k1, s1 := r.resolveInst(t1, a1.Struct.Name, a1.Inst)
	i2, k2, s2 := r.resolveInst(t2, a2.Struct.Name, a2.Inst)
	if s1 || s2 {
		// A sweep touches every instance of the arena, so it certainly
		// meets whatever instance the other access resolves to.
		return ovMust
	}
	if !k1 || !k2 {
		return ovMay
	}
	if i1 == i2 {
		return ovMust
	}
	if !r.counted(a1.Struct.Name) {
		// Unknown instance count: equal indices must collide at any
		// count, but distinct indices only prove distinctness modulo a
		// known one.
		return ovMay
	}
	return ovNo
}

// lockExcluded reports whether some lock provably serializes the two
// accesses: both hold a lock on the same field of the same struct whose
// instance expressions resolve, for these two threads, to the same
// concrete instance. This is strictly stronger than the syntactic
// shared-instance check in locks.MutualExclusion: param-derived locks
// with equal known bindings exclude too.
func (r *Result) lockExcluded(t1 int, a1 *Access, t2 int, a2 *Access) bool {
	if len(a1.Held) == 0 || len(a2.Held) == 0 {
		return false
	}
	for _, k1 := range a1.Held {
		for _, k2 := range a2.Held {
			if k1.Struct != k2.Struct || k1.Field != k2.Field || k1.Struct == "" {
				continue
			}
			i1, kn1, sw1 := r.resolveInst(t1, k1.Struct, k1.Inst)
			i2, kn2, sw2 := r.resolveInst(t2, k2.Struct, k2.Inst)
			if !sw1 && !sw2 && kn1 && kn2 && i1 == i2 {
				return true
			}
		}
	}
	return false
}

// conflictVerdict folds the thread-pair lattice for one access pair:
// the strongest non-excluded overlap, and whether any overlapping
// combination was lock-serialized. Thread pairs the happens-before
// graph proves ordered contribute nothing at all — an ordered pair
// cannot conflict, so it neither raises the overlap nor counts as
// lock-serialized.
func (r *Result) conflictVerdict(a1, a2 *Access) (ov overlapKind, excluded bool) {
	for _, t1 := range a1.Threads {
		for _, t2 := range a2.Threads {
			if t1 == t2 {
				continue
			}
			o := r.overlap(t1, a1, t2, a2)
			if o == ovNo {
				continue
			}
			if r.hbExcluded(t1, a1.Block, t2, a2.Block) {
				continue
			}
			if r.lockExcluded(t1, a1, t2, a2) {
				excluded = true
				continue
			}
			if o > ov {
				ov = o
			}
			if ov == ovMust {
				return ov, excluded
			}
		}
	}
	return ov, excluded
}

// classifyExact is the original per-access-pair classification walk,
// kept behind Config.ExactClassify as the oracle the summary path is
// differentially tested against: O(accesses²) pairs per struct, the
// thread/lock/instance verdict re-derived for every pair. It feeds the
// same order-canonical aggregator as classifySummary, so both paths
// produce bit-identical PairInfos.
func (r *Result) classifyExact() {
	names := make([]string, 0, len(r.byStruct))
	for name := range r.byStruct {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		idxs := r.byStruct[name]
		aggs := make(map[[2]int]*pairAgg)
		for x := 0; x < len(idxs); x++ {
			a1 := &r.Accesses[idxs[x]]
			for y := x + 1; y < len(idxs); y++ {
				a2 := &r.Accesses[idxs[y]]
				if a1.Field == a2.Field {
					continue // true sharing, not a layout decision
				}
				ov, excluded := r.conflictVerdict(a1, a2)
				if ov == ovNo && !excluded {
					continue
				}
				class, certain := classOf(ov, a1.Write || a2.Write)
				w := a1.Freq
				if a2.Freq < w {
					w = a2.Freq
				}
				key := pairKey(a1.Field, a2.Field)
				agg := aggs[key]
				if agg == nil {
					agg = &pairAgg{}
					aggs[key] = agg
				}
				agg.addPair(class, certain, w, idxs[x], idxs[y])
			}
		}
		if len(aggs) > 0 {
			pairs := make(map[[2]int]PairInfo, len(aggs))
			for k, agg := range aggs {
				pairs[k] = agg.finalize()
			}
			r.Pairs[name] = pairs
		}
	}
}

func pairKey(f1, f2 int) [2]int {
	if f1 > f2 {
		f1, f2 = f2, f1
	}
	return [2]int{f1, f2}
}

// Pair returns the verdict for a field pair of a struct; absent pairs are
// NeverShared.
func (r *Result) Pair(structName string, f1, f2 int) PairInfo {
	return r.Pairs[structName][pairKey(f1, f2)]
}

// ReachingThreads returns the sorted thread indices that can enter the
// procedure, nil when unreachable.
func (r *Result) ReachingThreads(proc string) []int { return r.reach[proc] }

// blockHeld returns the lock set provably held across every
// field-touching instruction of the block (the intersection), nil when
// unknown or empty.
func (r *Result) blockHeld(b *ir.BasicBlock) []locks.Key {
	if r.Locks == nil || b == nil {
		return nil
	}
	var held []locks.Key
	first := true
	for seq := range b.FieldInstrs() {
		h := r.Locks.HeldAt(b.Global, seq)
		if len(h) == 0 {
			return nil
		}
		if first {
			held = append([]locks.Key(nil), h...)
			first = false
			continue
		}
		var keep []locks.Key
		for _, k := range held {
			for _, k2 := range h {
				if k == k2 {
					keep = append(keep, k)
					break
				}
			}
		}
		held = keep
		if len(held) == 0 {
			return nil
		}
	}
	return held
}

// Exclusive reports whether two blocks provably never execute in
// parallel: either no two distinct threads reach them, or every
// reaching thread pair is serialized — by a common lock held on the
// same concrete instance across both blocks, or by the happens-before
// graph ordering every segment combination the blocks can execute in.
// It is the complement of MayHappenInParallel and deliberately
// conservative — unknown always means "may be parallel".
func (r *Result) Exclusive(b1, b2 ir.BlockID) bool {
	blk1, blk2 := r.blockAt(b1), r.blockAt(b2)
	if blk1 == nil || blk2 == nil {
		return false
	}
	t1s := r.reach[blk1.Proc.Name]
	t2s := r.reach[blk2.Proc.Name]
	if len(t1s) == 0 || len(t2s) == 0 {
		return true // never executes at all
	}
	if len(t1s) == 1 && len(t2s) == 1 && t1s[0] == t2s[0] {
		return true // a single thread executes sequentially
	}
	h1, h2 := r.blockHeld(blk1), r.blockHeld(blk2)
	locksUsable := len(h1) > 0 && len(h2) > 0
	for _, t1 := range t1s {
		for _, t2 := range t2s {
			if t1 == t2 {
				continue
			}
			if locksUsable && r.heldPairExcludes(t1, h1, t2, h2) {
				continue
			}
			if r.hbExcluded(t1, b1, t2, b2) {
				continue
			}
			return false
		}
	}
	return true
}

// MayHappenInParallel reports whether two blocks can execute concurrently
// on distinct threads.
func (r *Result) MayHappenInParallel(b1, b2 ir.BlockID) bool { return !r.Exclusive(b1, b2) }

func (r *Result) heldPairExcludes(t1 int, h1 []locks.Key, t2 int, h2 []locks.Key) bool {
	for _, k1 := range h1 {
		for _, k2 := range h2 {
			if k1.Struct != k2.Struct || k1.Field != k2.Field || k1.Struct == "" {
				continue
			}
			i1, kn1, sw1 := r.resolveInst(t1, k1.Struct, k1.Inst)
			i2, kn2, sw2 := r.resolveInst(t2, k2.Struct, k2.Inst)
			if !sw1 && !sw2 && kn1 && kn2 && i1 == i2 {
				return true
			}
		}
	}
	return false
}

func (r *Result) blockAt(b ir.BlockID) *ir.BasicBlock {
	if b < 0 || int(b) >= r.Prog.NumBlocks() {
		return nil
	}
	blk := r.Prog.Block(b)
	if blk == nil || blk.Proc == nil {
		return nil
	}
	return blk
}

// CCCheck is the cross-validation of a sampled Concurrency Map against
// the MHP relation.
type CCCheck struct {
	// TotalMass and ContradictedMass sum CC over all pairs and over pairs
	// the MHP relation proves exclusive; a clean, accurately-attributed
	// trace has zero contradicted mass.
	TotalMass        float64
	ContradictedMass float64
	// ContradictedPairs counts the offending pairs; Worst is the one with
	// the most mass (zero Pair when none).
	ContradictedPairs int
	Worst             concurrency.Pair
	// Agreement is 1 − ContradictedMass/TotalMass (1 when the map is
	// empty): the fraction of sampled concurrency the static analysis
	// considers possible.
	Agreement float64
}

// CheckCC cross-validates sampled CodeConcurrency against the MHP
// relation: CC mass on block pairs that provably cannot run in parallel
// is measurement error (misattributed CPUs, timing skew), and its share
// is a calibrated consistency signal for internal/quality.
func (r *Result) CheckCC(cm *concurrency.Map) CCCheck {
	out := CCCheck{Agreement: 1}
	if cm == nil || len(cm.CC) == 0 {
		return out
	}
	pairs := make([]concurrency.Pair, 0, len(cm.CC))
	for p := range cm.CC {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	var worstMass float64
	for _, p := range pairs {
		v := cm.CC[p]
		out.TotalMass += v
		if v > 0 && r.Exclusive(p.A, p.B) {
			out.ContradictedMass += v
			out.ContradictedPairs++
			if v > worstMass {
				worstMass = v
				out.Worst = p
			}
		}
	}
	if out.TotalMass > 0 {
		out.Agreement = 1 - out.ContradictedMass/out.TotalMass
	}
	return out
}

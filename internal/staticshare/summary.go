// summary.go is the summary-based classification path: instead of
// enumerating every pair of field-touching instructions and re-deriving
// the same thread/lock/instance verdict O(A²) times, each procedure gets
// one parameterized footprint summary — its accesses compressed into
// signature groups whose instance expressions keep thread-param slots
// symbolic and whose frequencies are per-entry — and the struct-level
// classification works on instantiated groups. The pairwise
// thread/lock/instance verdict depends only on the signature, so it is
// computed once per group pair instead of once per access pair, and
// per-struct classification fans out over internal/parallel.
//
// Both classification paths (this one and the exact per-access-pair walk
// kept behind Config.ExactClassify) feed the same order-canonical
// aggregator, pairAgg, so their PairInfos — classes, certainty,
// evidence indices and float Weights — are bit-identical. The
// differential tests pin exactly that.
//
// The interprocedural propagations (thread reachability and entry
// frequency) run bottom-up over the call graph's SCC condensation in
// callers-before-callees order, with the per-component fixed point
// degenerating to a single visit on the acyclic graphs finalized
// programs have.
package staticshare

import (
	"fmt"
	"sort"
	"strings"

	"structlayout/internal/ir"
	"structlayout/internal/locks"
	"structlayout/internal/parallel"
)

// callGraph is the procedure-level call graph with deduplicated edges —
// the input to the SCC condensation both interprocedural propagations
// run over.
type callGraph struct {
	procs []*ir.Procedure
	index map[string]int
	succ  [][]int
}

func buildCallGraph(p *ir.Program) *callGraph {
	g := &callGraph{procs: p.Procs, index: make(map[string]int, len(p.Procs))}
	for i, pr := range p.Procs {
		g.index[pr.Name] = i
	}
	g.succ = make([][]int, len(p.Procs))
	for i, pr := range p.Procs {
		var seen map[int]bool
		for _, b := range pr.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				j, ok := g.index[in.Callee]
				if !ok || seen[j] {
					continue
				}
				if seen == nil {
					seen = make(map[int]bool)
				}
				seen[j] = true
				g.succ[i] = append(g.succ[i], j)
			}
		}
		sort.Ints(g.succ[i])
	}
	return g
}

// sccTopo returns the strongly connected components of the call graph in
// condensation topological order (callers before callees), via Tarjan's
// algorithm. Finalized programs are acyclic, so every component is a
// single procedure; damaged or frontend-recursive programs get genuine
// multi-node components the propagations treat as one unit.
func (g *callGraph) sccTopo() [][]int {
	n := len(g.procs)
	idx := make([]int, n)
	low := make([]int, n)
	onstack := make([]bool, n)
	for i := range idx {
		idx[i] = -1
	}
	var stack []int
	var comps [][]int
	next := 0
	var strong func(v int)
	strong = func(v int) {
		idx[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onstack[v] = true
		for _, w := range g.succ[v] {
			if idx[w] == -1 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onstack[w] && idx[w] < low[v] {
				low[v] = idx[w]
			}
		}
		if low[v] == idx[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onstack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Ints(comp)
			comps = append(comps, comp)
		}
	}
	for v := 0; v < n; v++ {
		if idx[v] == -1 {
			strong(v)
		}
	}
	// Tarjan emits components callees-first; reverse for callers-first.
	for i, j := 0, len(comps)-1; i < j; i, j = i+1, j-1 {
		comps[i], comps[j] = comps[j], comps[i]
	}
	return comps
}

// componentOf maps each procedure index to its component index.
func componentOf(n int, comps [][]int) []int {
	comp := make([]int, n)
	for ci, c := range comps {
		for _, v := range c {
			comp[v] = ci
		}
	}
	return comp
}

// computeReach propagates thread sets down the SCC condensation:
// reach[proc] becomes the sorted set of thread indices whose execution
// can enter proc. Within a component the fixed point is just the union
// of the members' inflow (every member reaches every other), so one
// union per component replaces the old whole-graph iteration-to-fixpoint.
func (r *Result) computeReach() {
	g := buildCallGraph(r.Prog)
	comps := g.sccTopo()
	comp := componentOf(len(g.procs), comps)
	inflow := make([]map[int]bool, len(g.procs))
	at := func(i int) map[int]bool {
		if inflow[i] == nil {
			inflow[i] = make(map[int]bool)
		}
		return inflow[i]
	}
	for ti, t := range r.Threads {
		if i, ok := g.index[t.Proc]; ok {
			at(i)[ti] = true
		}
	}
	for ci, c := range comps {
		merged := make(map[int]bool)
		for _, v := range c {
			for ti := range inflow[v] {
				merged[ti] = true
			}
		}
		if len(merged) == 0 {
			continue
		}
		sorted := make([]int, 0, len(merged))
		for ti := range merged {
			sorted = append(sorted, ti)
		}
		sort.Ints(sorted)
		for _, v := range c {
			r.reach[g.procs[v].Name] = sorted
			for _, w := range g.succ[v] {
				if comp[w] == ci {
					continue
				}
				dst := at(w)
				for ti := range merged {
					dst[ti] = true
				}
			}
		}
	}
}

// computeFreq estimates static execution frequencies. It returns each
// block's frequency per single entry of its procedure (loop trip counts ×
// branch probabilities) and fills procFreq with the interprocedural entry
// frequency: thread iteration counts propagated through call sites in
// condensation order, callers before callees. Intra-component (recursive)
// call edges contribute no frequency — recursion has no static trip
// count, matching the Go frontend's recursion-edge dropping — so acyclic
// programs get exactly the old callers-before-callees propagation, while
// cyclic (damaged) programs now degrade per component instead of losing
// interprocedural frequencies program-wide.
func (r *Result) computeFreq() map[ir.BlockID]float64 {
	local := make(map[ir.BlockID]float64)
	for _, pr := range r.Prog.Procs {
		walkFreq(pr.Tree, 1, local)
	}
	// Entry frequencies from the thread declarations.
	for _, t := range r.Threads {
		iters := t.Iters
		if iters <= 0 {
			iters = 1
		}
		r.procFreq[t.Proc] += float64(iters)
	}
	g := buildCallGraph(r.Prog)
	comps := g.sccTopo()
	comp := componentOf(len(g.procs), comps)
	for ci, c := range comps {
		for _, v := range c {
			pr := g.procs[v]
			f := r.procFreq[pr.Name]
			if f == 0 {
				continue
			}
			for _, b := range pr.Blocks {
				for _, in := range b.Instrs {
					if in.Op != ir.OpCall {
						continue
					}
					j, ok := g.index[in.Callee]
					if !ok || comp[j] == ci {
						continue
					}
					r.procFreq[in.Callee] += f * local[b.Global]
				}
			}
		}
	}
	return local
}

// conflictKey is the part of an access signature the pairwise verdict
// depends on: conflictVerdict (and lockedButShared) consult only the
// instance expression, the reaching-thread set, the held-lock set and
// the happens-before segments of the access's block, so two accesses
// with equal conflictKeys are interchangeable in any verdict. threads,
// held and segs are canonical encodings so the struct is comparable
// and usable as a map key. segs is "" on programs without sync
// statements, so their grouping is unchanged from the pre-HB analysis.
type conflictKey struct {
	inst    ir.InstExpr
	threads string
	held    string
	segs    string
}

func threadsKey(ts []int) string {
	if len(ts) == 0 {
		return ""
	}
	var b strings.Builder
	for i, t := range ts {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", t)
	}
	return b.String()
}

// heldKeyEnc canonically encodes a definitely-held lock set: entries
// rendered unambiguously and sorted, so order within the set does not
// split groups.
func heldKeyEnc(held []locks.Key) string {
	if len(held) == 0 {
		return ""
	}
	parts := make([]string, len(held))
	for i, k := range held {
		parts[i] = fmt.Sprintf("%s\x00%d\x00%d\x00%d", k.Struct, k.Field, k.Inst.Kind, k.Inst.Index)
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x01")
}

// SummaryGroup is one signature group of a procedure summary: the
// subset of the procedure's field-touching instructions the classifier
// cannot distinguish (same field, same write-ness, same instance
// expression, same held-lock set). LocalFreq histograms the members'
// per-entry frequencies; instantiation scales it by the procedure's
// interprocedural entry frequency.
type SummaryGroup struct {
	Struct string
	Field  int
	Write  bool
	Inst   ir.InstExpr
	// MinAccess is the smallest Result.Accesses index in the group — the
	// canonical evidence representative.
	MinAccess int
	// LocalFreq maps per-entry frequency → member count.
	LocalFreq map[float64]int64

	heldEnc string
	segEnc  string
	rep     *Access
}

// ProcSummary is one procedure's parameterized footprint summary. The
// instance expressions keep thread-parameter slots symbolic and the
// frequencies are per-entry, so the summary is computed once per
// procedure and instantiated at the struct level with the procedure's
// reaching threads and entry frequency — call sites reuse it instead of
// re-descending into the callee.
type ProcSummary struct {
	Proc   string
	Groups []SummaryGroup
}

// ProcSummaryOf returns the footprint summary computed for a procedure,
// nil when the summary path did not run (ExactClassify) or the procedure
// has no field-touching instructions.
func (r *Result) ProcSummaryOf(proc string) *ProcSummary { return r.summaries[proc] }

// summarize compresses the collected accesses into one summary per
// procedure. Accesses carry their final (already instantiated) facts;
// the summary keeps the per-entry frequency so instantiation recomputes
// pf·local with exactly the floats the exact path used.
func (r *Result) summarize(local map[ir.BlockID]float64) {
	r.summaries = make(map[string]*ProcSummary)
	type gkey struct {
		structName string
		field      int
		write      bool
		inst       ir.InstExpr
		held       string
		segs       string
	}
	index := make(map[string]map[gkey]int)
	for ai := range r.Accesses {
		a := &r.Accesses[ai]
		blk := r.Prog.Block(a.Block)
		if blk == nil || blk.Proc == nil {
			continue
		}
		ps := r.summaries[blk.Proc.Name]
		if ps == nil {
			ps = &ProcSummary{Proc: blk.Proc.Name}
			r.summaries[blk.Proc.Name] = ps
			index[blk.Proc.Name] = make(map[gkey]int)
		}
		k := gkey{a.Struct.Name, a.Field, a.Write, a.Inst, heldKeyEnc(a.Held), a.segKey}
		gi, ok := index[blk.Proc.Name][k]
		if !ok {
			gi = len(ps.Groups)
			index[blk.Proc.Name][k] = gi
			ps.Groups = append(ps.Groups, SummaryGroup{
				Struct:    a.Struct.Name,
				Field:     a.Field,
				Write:     a.Write,
				Inst:      a.Inst,
				MinAccess: ai,
				LocalFreq: make(map[float64]int64),
				heldEnc:   k.held,
				segEnc:    k.segs,
				rep:       a,
			})
		}
		ps.Groups[gi].LocalFreq[local[a.Block]]++
	}
}

// instGroup is a SummaryGroup instantiated with its procedure's reaching
// threads and entry frequency, merged across procedures that produced
// the same full signature.
type instGroup struct {
	field int
	write bool
	ck    conflictKey
	min   int
	freqs map[float64]int64
	rep   *Access
}

// classifySummary is the summary-based replacement for the exact
// pairwise walk: instantiate every procedure summary, merge groups with
// equal signatures, and classify per struct over group pairs — the
// verdict memoized per conflict-key pair, the min-frequency cross
// histograms computed in closed form. Per-struct work fans out over
// internal/parallel with gather-by-index, so results are byte-identical
// at any -j.
func (r *Result) classifySummary(local map[ir.BlockID]float64) {
	r.summarize(local)

	type fullSig struct {
		field int
		write bool
		ck    conflictKey
	}
	byStruct := make(map[string]map[fullSig]*instGroup)
	for _, pr := range r.Prog.Procs {
		ps := r.summaries[pr.Name]
		if ps == nil {
			continue
		}
		pf := r.procFreq[pr.Name]
		tk := threadsKey(r.reach[pr.Name])
		for gi := range ps.Groups {
			g := &ps.Groups[gi]
			sig := fullSig{g.Field, g.Write, conflictKey{g.Inst, tk, g.heldEnc, g.segEnc}}
			m := byStruct[g.Struct]
			if m == nil {
				m = make(map[fullSig]*instGroup)
				byStruct[g.Struct] = m
			}
			ig := m[sig]
			if ig == nil {
				ig = &instGroup{
					field: g.Field,
					write: g.Write,
					ck:    sig.ck,
					min:   g.MinAccess,
					freqs: make(map[float64]int64),
					rep:   g.rep,
				}
				m[sig] = ig
			} else if g.MinAccess < ig.min {
				ig.min = g.MinAccess
				ig.rep = g.rep
			}
			for v, c := range g.LocalFreq {
				ig.freqs[pf*v] += c
			}
		}
	}

	names := make([]string, 0, len(byStruct))
	for name := range byStruct {
		names = append(names, name)
	}
	sort.Strings(names)
	results, _ := parallel.Map(len(names), func(i int) (map[[2]int]PairInfo, error) {
		groups := make([]*instGroup, 0, len(byStruct[names[i]]))
		for _, g := range byStruct[names[i]] {
			groups = append(groups, g)
		}
		sort.Slice(groups, func(a, b int) bool { return groups[a].min < groups[b].min })
		return r.classifyGroups(groups), nil
	})
	for i, pairs := range results {
		if len(pairs) > 0 {
			r.Pairs[names[i]] = pairs
		}
	}
}

// classifyGroups folds all cross-group verdicts of one struct into
// per-field-pair aggregates. groups must be ordered by MinAccess, so
// (g1.min, g2.min) is the lexicographically smallest evidence pair of
// the whole cross product.
func (r *Result) classifyGroups(groups []*instGroup) map[[2]int]PairInfo {
	type verdictVal struct {
		ov       overlapKind
		excluded bool
	}
	verdicts := make(map[[2]conflictKey]verdictVal)
	verdict := func(g1, g2 *instGroup) (overlapKind, bool) {
		k1, k2 := g1.ck, g2.ck
		if k2.less(k1) {
			k1, k2 = k2, k1
		}
		mk := [2]conflictKey{k1, k2}
		if v, ok := verdicts[mk]; ok {
			return v.ov, v.excluded
		}
		ov, excluded := r.conflictVerdict(g1.rep, g2.rep)
		verdicts[mk] = verdictVal{ov, excluded}
		return ov, excluded
	}
	aggs := make(map[[2]int]*pairAgg)
	for i := 0; i < len(groups); i++ {
		g1 := groups[i]
		for j := i + 1; j < len(groups); j++ {
			g2 := groups[j]
			if g1.field == g2.field {
				continue // true sharing, not a layout decision
			}
			ov, excluded := verdict(g1, g2)
			if ov == ovNo && !excluded {
				continue
			}
			class, certain := classOf(ov, g1.write || g2.write)
			key := pairKey(g1.field, g2.field)
			agg := aggs[key]
			if agg == nil {
				agg = &pairAgg{}
				aggs[key] = agg
			}
			agg.addGroup(class, certain, minHist(g1.freqs, g2.freqs), g1.min, g2.min)
		}
	}
	if len(aggs) == 0 {
		return nil
	}
	pairs := make(map[[2]int]PairInfo, len(aggs))
	for k, agg := range aggs {
		pairs[k] = agg.finalize()
	}
	return pairs
}

// less is a total order on conflict keys, used only to canonicalize the
// verdict-memo key (the verdict itself is symmetric).
func (k conflictKey) less(o conflictKey) bool {
	if k.inst.Kind != o.inst.Kind {
		return k.inst.Kind < o.inst.Kind
	}
	if k.inst.Index != o.inst.Index {
		return k.inst.Index < o.inst.Index
	}
	if k.threads != o.threads {
		return k.threads < o.threads
	}
	if k.held != o.held {
		return k.held < o.held
	}
	return k.segs < o.segs
}

// classOf maps a pair verdict onto the class lattice. The caller
// guarantees ov != ovNo || excluded.
func classOf(ov overlapKind, anyWrite bool) (PairClass, bool) {
	switch {
	case ov != ovNo && anyWrite:
		return WriteShared, ov == ovMust
	case ov != ovNo:
		return ReadShared, false
	default:
		return LockSerialized, false
	}
}

// pairAgg accumulates the verdicts for one field pair in a form
// independent of enumeration order and of how accesses are grouped:
// classes fold by max, certainty by or, evidence by lexicographic
// minimum, and weights are kept as min-frequency histograms per class so
// the final sum associates in one canonical (value-ascending) order no
// matter which path produced it. The exact walk feeds it one access
// pair at a time, the summary path one group pair at a time; both end at
// bit-identical PairInfos.
type pairAgg struct {
	class     PairClass
	certain   bool
	hist      [WriteShared + 1]map[float64]int64
	ev        [WriteShared + 1][2]int
	evSet     [WriteShared + 1]bool
	evCertain [2]int
	evCertSet bool
}

func (g *pairAgg) bump(class PairClass, certain bool, a1, a2 int) {
	if class > g.class {
		g.class = class
	}
	if certain {
		g.certain = true
		if !g.evCertSet || lessPair(a1, a2, g.evCertain) {
			g.evCertain = [2]int{a1, a2}
			g.evCertSet = true
		}
	}
	if !g.evSet[class] || lessPair(a1, a2, g.ev[class]) {
		g.ev[class] = [2]int{a1, a2}
		g.evSet[class] = true
	}
}

func lessPair(a1, a2 int, than [2]int) bool {
	return a1 < than[0] || (a1 == than[0] && a2 < than[1])
}

// addPair records one access pair (exact path): w is min(freq1, freq2).
func (g *pairAgg) addPair(class PairClass, certain bool, w float64, a1, a2 int) {
	g.bump(class, certain, a1, a2)
	h := g.hist[class]
	if h == nil {
		h = make(map[float64]int64)
		g.hist[class] = h
	}
	h[w]++
}

// addGroup records a whole group pair (summary path): hist is the
// min-frequency histogram of the cross product, (a1, a2) its
// lexicographically smallest evidence pair.
func (g *pairAgg) addGroup(class PairClass, certain bool, hist map[float64]int64, a1, a2 int) {
	g.bump(class, certain, a1, a2)
	h := g.hist[class]
	if h == nil {
		h = make(map[float64]int64)
		g.hist[class] = h
	}
	for v, c := range hist {
		h[v] += c
	}
}

// finalize folds the aggregate into the published PairInfo. Weight sums
// the final class's histogram in ascending value order — the canonical
// association both classification paths share. Evidence is the smallest
// certainly-write-shared pair when the verdict is certain, else the
// smallest pair of the final class.
func (g *pairAgg) finalize() PairInfo {
	info := PairInfo{Class: g.class, Certain: g.certain, Weight: histWeight(g.hist[g.class])}
	if g.class == WriteShared && g.certain {
		info.A1, info.A2 = g.evCertain[0], g.evCertain[1]
	} else {
		info.A1, info.A2 = g.ev[g.class][0], g.ev[g.class][1]
	}
	return info
}

// histWeight sums value·count over the histogram in ascending value
// order — one canonical float association.
func histWeight(h map[float64]int64) float64 {
	vals := make([]float64, 0, len(h))
	for v := range h {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	var w float64
	for _, v := range vals {
		w += v * float64(h[v])
	}
	return w
}

// minHist returns the histogram of min(v1, v2) over the cross product of
// two frequency histograms — the closed form of the exact path's
// per-pair min accumulation. A cross pair's min is counted on the h1
// side when the h2 value is ≥ it, and on the h2 side when the h1 value
// is strictly greater, so every pair is counted exactly once.
func minHist(h1, h2 map[float64]int64) map[float64]int64 {
	v1, s1 := sortedSuffix(h1)
	v2, s2 := sortedSuffix(h2)
	out := make(map[float64]int64, len(v1)+len(v2))
	for _, v := range v1 {
		if ge := countAtLeast(v2, s2, v, false); ge > 0 {
			out[v] += h1[v] * ge
		}
	}
	for _, v := range v2 {
		if gt := countAtLeast(v1, s1, v, true); gt > 0 {
			out[v] += h2[v] * gt
		}
	}
	return out
}

// sortedSuffix returns the histogram's distinct values ascending and the
// suffix counts s[i] = Σ_{j≥i} h[v[j]].
func sortedSuffix(h map[float64]int64) ([]float64, []int64) {
	vals := make([]float64, 0, len(h))
	for v := range h {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	suffix := make([]int64, len(vals)+1)
	for i := len(vals) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + h[vals[i]]
	}
	return vals, suffix
}

// countAtLeast returns the total count of values ≥ v (strict when
// excl is set) in a sorted histogram with suffix counts.
func countAtLeast(vals []float64, suffix []int64, v float64, excl bool) int64 {
	i := sort.SearchFloat64s(vals, v)
	if excl && i < len(vals) && vals[i] == v {
		i++
	}
	return suffix[i]
}

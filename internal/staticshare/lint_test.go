package staticshare

import (
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"structlayout/internal/concurrency"
	"structlayout/internal/diag"
	"structlayout/internal/irtext"
)

// lintSource parses and lints one DSL source; parse errors return nil
// findings (the linter's contract only covers programs that parse).
func lintSource(t *testing.T, src string) []Finding {
	t.Helper()
	f, err := irtext.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	findings, _, err := LintFile(f, 128)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	return findings
}

func readExample(t *testing.T, rel string) string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", rel))
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

// TestLintExamplesGolden pins the linter's verdict on the shipped example
// programs: the seeded-false-sharing ones flag, the clean one stays
// silent — the same contract the CI lint job asserts through the CLI.
func TestLintExamplesGolden(t *testing.T) {
	cases := []struct {
		path      string
		wantCodes []string // every code that must appear; empty = clean
	}{
		{"examples/lint/clean.slp", nil},
		{"examples/lint/falseshare.slp", []string{CodeFalseSharing, CodePerThreadLock}},
		{"examples/lint/forkjoin.slp", []string{CodeFalseSharing}},
		{"examples/lint/pipeline.slp", nil},
		{"examples/dslprogram/webserver.slp", []string{CodeFalseSharing}},
	}
	for _, tc := range cases {
		t.Run(filepath.Base(tc.path), func(t *testing.T) {
			findings := lintSource(t, readExample(t, tc.path))
			if len(tc.wantCodes) == 0 {
				if len(findings) != 0 {
					t.Fatalf("want clean, got %d findings: %+v", len(findings), findings)
				}
				return
			}
			if len(findings) == 0 {
				t.Fatal("want findings, got none")
			}
			got := make(map[string]bool)
			for _, f := range findings {
				got[f.Code] = true
			}
			for _, code := range tc.wantCodes {
				if !got[code] {
					t.Errorf("missing finding code %s (got %v)", code, got)
				}
			}
		})
	}
}

// TestLintFalseShareDetails pins the exact fields the seeded example
// flags, so a ranking or classification regression is visible as more
// than an exit-code flip.
func TestLintFalseShareDetails(t *testing.T) {
	findings := lintSource(t, readExample(t, "examples/lint/falseshare.slp"))
	var pairs []string
	for _, f := range findings {
		if f.Code == CodeFalseSharing {
			pairs = append(pairs, strings.Join(f.Fields, "/"))
		}
	}
	want := map[string]bool{"s_lock/s_errs": true, "s_lock/s_reqs": true, "s_reqs/s_errs": true}
	if len(pairs) != len(want) {
		t.Fatalf("false-sharing pairs %v, want exactly %v", pairs, want)
	}
	for _, pr := range pairs {
		if !want[pr] {
			t.Errorf("unexpected false-sharing pair %s", pr)
		}
	}
}

func TestFindingsJSONRoundTrip(t *testing.T) {
	findings := lintSource(t, readExample(t, "examples/lint/falseshare.slp"))
	raw, err := MarshalFindings(findings)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(findings) {
		t.Fatalf("decoded %d findings, want %d", len(decoded), len(findings))
	}
	if sev, ok := decoded[0]["severity"].(string); !ok || sev == "" {
		t.Errorf("severity should marshal as a non-empty string, got %v", decoded[0]["severity"])
	}
	// Empty slices marshal as an empty array, not null.
	raw, err = MarshalFindings(nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(raw)) != "[]" {
		t.Errorf("nil findings marshal to %q, want []", raw)
	}
}

func TestReportDiagMirrorsFindings(t *testing.T) {
	findings := lintSource(t, readExample(t, "examples/lint/falseshare.slp"))
	log := diag.NewLog()
	ReportDiag(log, findings)
	if log.Len() == 0 {
		t.Fatal("diag log should carry the findings")
	}
	if !strings.Contains(log.String(), CodeFalseSharing) {
		t.Errorf("diag log missing %s:\n%s", CodeFalseSharing, log.String())
	}
}

func TestLintCC(t *testing.T) {
	f, err := irtext.Parse(readExample(t, "examples/lint/clean.slp"))
	if err != nil {
		t.Fatal(err)
	}
	_, r, err := LintFile(f, 128)
	if err != nil {
		t.Fatal(err)
	}
	if fs := r.LintCC(nil); len(fs) != 0 {
		t.Errorf("nil map: want no CC findings, got %v", fs)
	}
	// Mass on an MHP pair of the real program is consistent: no finding.
	var b0 = f.Prog.Proc("worker").Blocks[0].Global
	ok := &concurrency.Map{CC: map[concurrency.Pair]float64{concurrency.MakePair(b0, b0): 2}}
	if fs := r.LintCC(ok); len(fs) != 0 {
		t.Errorf("consistent map: want no CC findings, got %v", fs)
	}
}

// TestLintParseCorpusNoPanic sweeps the irtext fuzz corpus through the
// linter: anything the parser accepts, the linter must survive.
func TestLintParseCorpusNoPanic(t *testing.T) {
	root := filepath.Join("..", "irtext", "testdata", "fuzz")
	n := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		src := decodeGoFuzzCorpus(t, path)
		if src == "" {
			return nil
		}
		f, perr := irtext.Parse(src)
		if perr != nil {
			return nil
		}
		if _, _, lerr := LintFile(f, 128); lerr != nil {
			t.Logf("%s: lint degraded: %v", path, lerr) // degrading is fine; panicking is not
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("linted %d corpus programs", n)
}

// decodeGoFuzzCorpus extracts the single string argument of a Go fuzz
// corpus file ("go test fuzz v1\nstring(...)"), or "" when the file is
// not in that shape.
func decodeGoFuzzCorpus(t *testing.T, path string) string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(raw), "\n", 2)
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "go test fuzz") {
		return ""
	}
	body := strings.TrimSpace(lines[1])
	body = strings.TrimPrefix(body, "string(")
	body = strings.TrimSuffix(body, ")")
	s, err := strconv.Unquote(body)
	if err != nil {
		return ""
	}
	return s
}

// FuzzLint asserts the linter's no-panic contract over arbitrary inputs:
// whatever irtext.Parse accepts, LintFile analyzes or degrades with an
// error — it never panics.
func FuzzLint(f *testing.F) {
	for _, rel := range []string{
		"examples/lint/clean.slp",
		"examples/lint/falseshare.slp",
		"examples/dslprogram/webserver.slp",
		// gofront-lowered programs: the fuzzer explores from the exact
		// shapes the Go frontend hands this linter.
		"internal/gofront/testdata/lowered_clean.slp",
		"internal/gofront/testdata/lowered_falseshare.slp",
	} {
		src, err := os.ReadFile(filepath.Join("..", "..", rel))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := irtext.Parse(src)
		if err != nil {
			return
		}
		findings, _, err := LintFile(file, 128)
		if err != nil {
			return
		}
		for _, fd := range findings {
			if fd.Message == "" || fd.Code == "" {
				t.Fatalf("malformed finding: %+v", fd)
			}
		}
	})
}

package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"structlayout/internal/flg"
	"structlayout/internal/layout"
)

// randomGraph builds an arbitrary FLG over n 8-byte fields from a seed.
func randomGraph(n int, seed int64) *flg.Graph {
	rng := rand.New(rand.NewSource(seed))
	hot := map[int]float64{}
	gain := map[[2]int]float64{}
	loss := map[[2]int]float64{}
	for i := 0; i < n; i++ {
		hot[i] = float64(rng.Intn(1000))
		for j := i + 1; j < n; j++ {
			switch rng.Intn(4) {
			case 0:
				gain[[2]int{i, j}] = float64(rng.Intn(500) + 1)
			case 1:
				loss[[2]int{i, j}] = float64(rng.Intn(500) + 1)
			}
		}
	}
	return makeGraph(n, hot, gain, loss)
}

// TestGreedyPropertyPartition: every field lands in exactly one cluster and
// no multi-field cluster exceeds a cache line.
func TestGreedyPropertyPartition(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%24) + 2
		g := randomGraph(n, seed)
		res := Greedy(g, 64) // 8 fields per line max
		seen := map[int]int{}
		for _, c := range res.Clusters {
			if len(c) == 0 {
				return false
			}
			if len(c) > 8 {
				return false // 8 × 8 bytes = 64-byte line capacity
			}
			for _, fi := range c {
				seen[fi]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, k := range seen {
			if k != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyPropertyClusterIntraNonNegative: each cluster's internal weight
// is the sum of the strictly positive weights its members were admitted
// with (Figure 7's best_weight > 0 rule), so it can never be negative.
// (Note a *member's* tie to the rest can turn negative after later
// admissions — a real artifact of the paper's greedy that the §5.2
// incremental mode exists to paper over.)
func TestGreedyPropertyClusterIntraNonNegative(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%20) + 2
		g := randomGraph(n, seed)
		res := Greedy(g, 128)
		for _, c := range res.Clusters {
			w := 0.0
			for i := 0; i < len(c); i++ {
				for j := i + 1; j < len(c); j++ {
					w += g.Weight(c[i], c[j])
				}
			}
			if w < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPackPropertySeparation: PackClusters with the separation predicate
// never co-locates clusters connected by negative total weight.
func TestPackPropertySeparation(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%20) + 2
		g := randomGraph(n, seed)
		res := Greedy(g, 128)
		lay, err := layout.PackClusters(g.Struct, "prop", res.Clusters, 128, layout.PackOptions{
			Separate: SeparatePredicate(g, res.Clusters),
		})
		if err != nil {
			return false
		}
		if lay.Validate() != nil {
			return false
		}
		for ci := range res.Clusters {
			for cj := ci + 1; cj < len(res.Clusters); cj++ {
				if BetweenWeight(g, res.Clusters[ci], res.Clusters[cj]) >= 0 {
					continue
				}
				for _, a := range res.Clusters[ci] {
					for _, b := range res.Clusters[cj] {
						if lay.SameLine(a, b) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyIntraAtLeastSingletons: clustering never does worse than the
// all-singletons partition (intra weight ≥ 0, since only positive ties are
// ever accepted).
func TestGreedyIntraAtLeastSingletons(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%24) + 2
		g := randomGraph(n, seed)
		res := Greedy(g, 128)
		return res.IntraWeight >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package cluster

import (
	"strings"
	"testing"

	"structlayout/internal/affinity"
	"structlayout/internal/flg"
	"structlayout/internal/ir"
)

// makeGraph hand-builds an FLG over a struct with the given number of
// 8-byte fields, hotness, and edges.
func makeGraph(n int, hot map[int]float64, gain, loss map[[2]int]float64) *flg.Graph {
	fields := make([]ir.Field, n)
	for i := range fields {
		fields[i] = ir.I64(fieldName(i))
	}
	st := ir.NewStruct("T", fields...)
	if gain == nil {
		gain = map[[2]int]float64{}
	}
	if loss == nil {
		loss = map[[2]int]float64{}
	}
	ag := &affinity.Graph{Struct: st, Weights: map[[2]int]float64{}, Hotness: hot}
	return &flg.Graph{Struct: st, Gain: gain, Loss: loss, Hotness: hot, Affinity: ag}
}

func fieldName(i int) string {
	return "f" + string(rune('a'+i))
}

func TestAffineFieldsClusterTogether(t *testing.T) {
	g := makeGraph(4,
		map[int]float64{0: 100, 1: 90, 2: 80, 3: 70},
		map[[2]int]float64{
			{0, 1}: 50, // f0-f1 affine
			{2, 3}: 40, // f2-f3 affine
		}, nil)
	res := Greedy(g, 128)
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %v", res.Clusters)
	}
	if !sameSet(res.Clusters[0], []int{0, 1}) || !sameSet(res.Clusters[1], []int{2, 3}) {
		t.Fatalf("clusters = %v", res.Clusters)
	}
	if res.IntraWeight != 90 || res.InterWeight != 0 {
		t.Fatalf("intra=%v inter=%v", res.IntraWeight, res.InterWeight)
	}
}

func TestNegativeEdgeSeparates(t *testing.T) {
	g := makeGraph(3,
		map[int]float64{0: 100, 1: 90, 2: 80},
		map[[2]int]float64{{0, 1}: 10},
		map[[2]int]float64{{0, 2}: 50, {1, 2}: 50})
	res := Greedy(g, 128)
	// f2 must not join {f0,f1}: its total weight to the cluster is -100.
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %v", res.Clusters)
	}
	if !sameSet(res.Clusters[0], []int{0, 1}) || !sameSet(res.Clusters[1], []int{2}) {
		t.Fatalf("clusters = %v", res.Clusters)
	}
	if res.InterWeight != -100 {
		t.Fatalf("inter = %v", res.InterWeight)
	}
}

func TestSeedIsHottest(t *testing.T) {
	g := makeGraph(3, map[int]float64{0: 1, 1: 500, 2: 2}, nil, nil)
	res := Greedy(g, 128)
	// No positive edges: every field is a singleton, hottest first.
	if len(res.Clusters) != 3 || res.Clusters[0][0] != 1 {
		t.Fatalf("clusters = %v", res.Clusters)
	}
}

func TestCapacityLimitsCluster(t *testing.T) {
	// 5 mutually affine 8-byte fields with a 32-byte line: max 4 per line.
	gain := map[[2]int]float64{}
	hot := map[int]float64{}
	for i := 0; i < 5; i++ {
		hot[i] = float64(100 - i)
		for j := i + 1; j < 5; j++ {
			gain[[2]int{i, j}] = 10
		}
	}
	g := makeGraph(5, hot, gain, nil)
	res := Greedy(g, 32)
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %v", res.Clusters)
	}
	if len(res.Clusters[0]) != 4 || len(res.Clusters[1]) != 1 {
		t.Fatalf("cluster sizes = %d,%d", len(res.Clusters[0]), len(res.Clusters[1]))
	}
}

func TestOversizedFieldSingleton(t *testing.T) {
	big := ir.NewStruct("B", ir.Arr("huge", 64, 8, 8), ir.I64("x"), ir.I64("y"))
	ag := &affinity.Graph{Struct: big, Weights: map[[2]int]float64{}, Hotness: map[int]float64{0: 10, 1: 5, 2: 1}}
	g := &flg.Graph{Struct: big, Gain: map[[2]int]float64{{1, 2}: 5}, Loss: map[[2]int]float64{}, Hotness: ag.Hotness, Affinity: ag}
	res := Greedy(g, 128)
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %v", res.Clusters)
	}
	if len(res.Clusters[0]) != 1 || res.Clusters[0][0] != 0 {
		t.Fatalf("oversized field not a singleton: %v", res.Clusters)
	}
}

func TestGreedyMostProfitableFirst(t *testing.T) {
	// Figure 7: pick the unassigned node maximizing total weight to the
	// cluster, not just any positive one.
	g := makeGraph(3,
		map[int]float64{0: 100, 1: 50, 2: 40},
		map[[2]int]float64{{0, 1}: 5, {0, 2}: 30}, nil)
	res := Greedy(g, 16) // only two 8-byte fields fit per line
	if !sameSet(res.Clusters[0], []int{0, 2}) {
		t.Fatalf("cluster 0 = %v, want {0,2}", res.Clusters[0])
	}
}

func TestSubgraphClustering(t *testing.T) {
	// Only nodes 1,2,4 have important edges; greedy over the subgraph must
	// ignore 0 and 3 entirely.
	g := makeGraph(5,
		map[int]float64{0: 1000, 1: 90, 2: 80, 3: 900, 4: 70},
		map[[2]int]float64{{1, 2}: 25},
		map[[2]int]float64{{1, 4}: 60})
	res := GreedySubgraph(g, 128)
	found := map[int]bool{}
	for _, c := range res.Clusters {
		for _, f := range c {
			found[f] = true
		}
	}
	if found[0] || found[3] {
		t.Fatalf("zero-degree nodes clustered: %v", res.Clusters)
	}
	if !found[1] || !found[2] || !found[4] {
		t.Fatalf("subgraph nodes missing: %v", res.Clusters)
	}
	// 1 and 2 together; 4 separate.
	for _, c := range res.Clusters {
		if containsInt(c, 1) && !containsInt(c, 2) {
			t.Fatalf("1 and 2 split: %v", res.Clusters)
		}
		if containsInt(c, 1) && containsInt(c, 4) {
			t.Fatalf("1 and 4 together: %v", res.Clusters)
		}
	}
}

func TestSeparatePredicate(t *testing.T) {
	g := makeGraph(4,
		map[int]float64{0: 10, 1: 9, 2: 8, 3: 7},
		map[[2]int]float64{{0, 1}: 5},
		map[[2]int]float64{{0, 2}: 50})
	clusters := [][]int{{0, 1}, {2}, {3}}
	sep := SeparatePredicate(g, clusters)
	if !sep(0, 1) {
		t.Fatal("negative-weight clusters not separated")
	}
	if sep(0, 2) || sep(1, 2) {
		t.Fatal("unrelated clusters separated")
	}
	if sep(0, 0) || sep(-1, 1) || sep(0, 99) {
		t.Fatal("degenerate inputs should not separate")
	}
}

func TestBetweenWeight(t *testing.T) {
	g := makeGraph(4, map[int]float64{},
		map[[2]int]float64{{0, 2}: 7},
		map[[2]int]float64{{1, 3}: 2})
	if got := BetweenWeight(g, []int{0, 1}, []int{2, 3}); got != 5 {
		t.Fatalf("BetweenWeight = %v, want 5", got)
	}
}

func TestDeterminism(t *testing.T) {
	gain := map[[2]int]float64{{0, 1}: 10, {2, 3}: 10, {4, 5}: 10}
	hot := map[int]float64{0: 10, 1: 10, 2: 10, 3: 10, 4: 10, 5: 10}
	g := makeGraph(6, hot, gain, nil)
	a := Greedy(g, 128)
	b := Greedy(g, 128)
	if len(a.Clusters) != len(b.Clusters) {
		t.Fatal("nondeterministic cluster count")
	}
	for i := range a.Clusters {
		if !sameSet(a.Clusters[i], b.Clusters[i]) {
			t.Fatalf("cluster %d differs: %v vs %v", i, a.Clusters[i], b.Clusters[i])
		}
	}
}

func TestEveryFieldAssignedOnce(t *testing.T) {
	gain := map[[2]int]float64{}
	hot := map[int]float64{}
	for i := 0; i < 12; i++ {
		hot[i] = float64(i * 7 % 5)
		gain[[2]int{i / 2 * 2, i/2*2 + 1}] = 3
	}
	g := makeGraph(12, hot, gain, nil)
	res := Greedy(g, 32)
	seen := map[int]int{}
	for _, c := range res.Clusters {
		for _, f := range c {
			seen[f]++
		}
	}
	if len(seen) != 12 {
		t.Fatalf("assigned %d fields, want 12", len(seen))
	}
	for f, n := range seen {
		if n != 1 {
			t.Fatalf("field %d assigned %d times", f, n)
		}
	}
}

func TestDump(t *testing.T) {
	g := makeGraph(2, map[int]float64{0: 2, 1: 1}, map[[2]int]float64{{0, 1}: 5}, nil)
	res := Greedy(g, 128)
	d := res.Dump(g)
	if !strings.Contains(d, "cluster 0: fa fb") {
		t.Fatalf("dump:\n%s", d)
	}
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[int]bool{}
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Package cluster implements the paper's greedy FLG clustering (§4.4,
// Figures 6 and 7): sort nodes by hotness; seed a cluster with the hottest
// unassigned field; repeatedly add the unassigned field with the maximum
// positive total edge weight into the cluster, subject to the cluster
// fitting in one cache line; when no candidate has positive weight or fits,
// start the next cluster from the hottest remaining field.
//
// It also implements the subgraph mode of §5.2 ("best performance"):
// cluster only the nodes that survive the important-edge filter, producing
// grouping/separation constraints for an incremental layout change.
package cluster

import (
	"fmt"
	"strings"

	"structlayout/internal/flg"
)

// Result is a partition of fields into clusters, with quality metrics.
type Result struct {
	// Clusters lists field indices in addition order (seed first). Cluster
	// order follows seed hotness, so hotter clusters come first in a
	// layout.
	Clusters [][]int
	// IntraWeight is the total FLG weight inside clusters (maximized).
	IntraWeight float64
	// InterWeight is the total FLG weight across clusters (minimized).
	InterWeight float64
}

// Greedy clusters every field of the struct (Figure 6). lineSize bounds
// each cluster's packed byte size; a single field larger than a line forms
// its own oversized cluster.
func Greedy(g *flg.Graph, lineSize int) Result {
	return cluster(g, g.Affinity.HottestFirst(), lineSize)
}

// GreedySubgraph clusters only the subgraph's connected nodes (§5.2).
func GreedySubgraph(g *flg.Graph, lineSize int) Result {
	nodes := g.Nodes()
	// Order by hotness descending, field index tiebreak.
	order := append([]int(nil), nodes...)
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if g.Hotness[b] > g.Hotness[a] || (g.Hotness[b] == g.Hotness[a] && b < a) {
				order[j-1], order[j] = b, a
			} else {
				break
			}
		}
	}
	return cluster(g, order, lineSize)
}

// cluster runs the greedy algorithm over the given node order.
func cluster(g *flg.Graph, order []int, lineSize int) Result {
	var res Result
	unassigned := append([]int(nil), order...)
	remove := func(f int) {
		for i, x := range unassigned {
			if x == f {
				unassigned = append(unassigned[:i], unassigned[i+1:]...)
				return
			}
		}
	}

	for len(unassigned) > 0 {
		seed := unassigned[0]
		remove(seed)
		cur := []int{seed}
		for {
			best, bestW := -1, 0.0
			for _, cand := range unassigned {
				if !fits(g, cur, cand, lineSize) {
					continue
				}
				w := 0.0
				for _, member := range cur {
					w += g.Weight(cand, member)
				}
				// Figure 7: best_weight starts at 0, so only strictly
				// positive totals are ever chosen.
				if w > bestW {
					best, bestW = cand, w
				}
			}
			if best < 0 {
				break
			}
			remove(best)
			cur = append(cur, best)
		}
		res.Clusters = append(res.Clusters, cur)
	}

	res.IntraWeight, res.InterWeight = Weights(g, res.Clusters)
	return res
}

// fits reports whether cluster+cand still packs into one cache line.
// Singletons always fit (an oversized field must live somewhere).
func fits(g *flg.Graph, cur []int, cand int, lineSize int) bool {
	end := 0
	for _, fi := range append(append([]int(nil), cur...), cand) {
		f := g.Struct.Fields[fi]
		end = (end+f.Align-1)/f.Align*f.Align + f.Size
	}
	return end <= lineSize
}

// Weights computes the total intra- and inter-cluster edge weights of a
// partition: the evidence the semi-automatic tool reports alongside the
// layout (§1.1).
func Weights(g *flg.Graph, clusters [][]int) (intra, inter float64) {
	clusterOf := make(map[int]int)
	for ci, c := range clusters {
		for _, f := range c {
			clusterOf[f] = ci
		}
	}
	for _, e := range g.Edges() {
		ci, ok1 := clusterOf[e.F1]
		cj, ok2 := clusterOf[e.F2]
		if !ok1 || !ok2 {
			continue
		}
		if ci == cj {
			intra += e.Weight()
		} else {
			inter += e.Weight()
		}
	}
	return intra, inter
}

// BetweenWeight sums the FLG weight between two clusters.
func BetweenWeight(g *flg.Graph, a, b []int) float64 {
	w := 0.0
	for _, f1 := range a {
		for _, f2 := range b {
			w += g.Weight(f1, f2)
		}
	}
	return w
}

// SeparatePredicate returns the layout-packing separation rule: two
// clusters must not share a cache line when the total FLG weight between
// them is negative (their fields falsely share).
func SeparatePredicate(g *flg.Graph, clusters [][]int) func(ci, cj int) bool {
	return func(ci, cj int) bool {
		if ci == cj || ci < 0 || cj < 0 || ci >= len(clusters) || cj >= len(clusters) {
			return false
		}
		return BetweenWeight(g, clusters[ci], clusters[cj]) < 0
	}
}

// Dump renders the partition.
func (r Result) Dump(g *flg.Graph) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "clusters for struct %s (intra=%.6g inter=%.6g)\n", g.Struct.Name, r.IntraWeight, r.InterWeight)
	for i, c := range r.Clusters {
		fmt.Fprintf(&sb, "  cluster %d:", i)
		for _, f := range c {
			fmt.Fprintf(&sb, " %s", g.Struct.Fields[f].Name)
		}
		fmt.Fprintln(&sb)
	}
	return sb.String()
}

// Command layoutd serves the layout-analysis pipeline over HTTP/JSON.
// See docs/SERVICE.md for the API and the degradation contract.
//
// Run:
//
//	layoutd -addr :8347 -cache-dir /var/cache/layoutd
//
// SIGTERM/SIGINT drain gracefully: readiness goes red, new API requests
// answer 503, in-flight requests finish (bounded by -drain-timeout), then
// the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"structlayout/internal/memo"
	"structlayout/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8347", "listen address")
		workers      = flag.Int("workers", 0, "concurrent analysis workers (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 0, "admission queue depth (0 = 4x workers)")
		deadline     = flag.Duration("deadline", 5*time.Second, "default per-request deadline")
		maxDeadline  = flag.Duration("max-deadline", 60*time.Second, "clamp for client-supplied deadlines")
		reserve      = flag.Duration("static-reserve", 250*time.Millisecond, "budget held back for the static-prior rung")
		machineName  = flag.String("machine", "way16", "default collection machine")
		cacheDir     = flag.String("cache-dir", "", "on-disk measurement cache (enables warm replay across restarts)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
	)
	flag.Parse()

	if *cacheDir != "" {
		if err := memo.Shared().SetDir(*cacheDir); err != nil {
			log.Fatalf("layoutd: %v", err)
		}
	}

	s := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		StaticReserve:   *reserve,
		DefaultMachine:  *machineName,
		Logf:            log.Printf,
	})
	hs := &http.Server{Addr: *addr, Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("layoutd: listening on %s (workers=%d)", *addr, *workers)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errc:
		log.Fatalf("layoutd: serve: %v", err)
	case sig := <-sigc:
		log.Printf("layoutd: %s received, draining", sig)
	}

	// Stop admitting, then wait for in-flight work (bounded). Exiting 0
	// after a clean drain is the contract the smoke test asserts.
	s.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "layoutd: drain timed out: %v\n", err)
		os.Exit(1)
	}
	st := s.Stats()
	log.Printf("layoutd: drained cleanly (served %d requests, %d panics)", st.Requests, st.Panics)
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"structlayout/internal/exec"
	"structlayout/internal/faults"
	"structlayout/internal/parallel"
	"structlayout/internal/quality"
	"structlayout/internal/staticshare"
)

// none is the identity fault spec the CLI parses from an empty -inject.
func none(t *testing.T) *faults.Spec {
	t.Helper()
	spec, err := faults.ParseSpec("")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestRunBuiltinStruct(t *testing.T) {
	// Short collection, both modes, with dumps.
	dir := t.TempDir()
	analysis, err := run("B", "bus4", "both", 7, 2, 4, 1, 20, false, true, "", "", dir, filepath.Join(dir, "flg.dot"), none(t), false)
	if err != nil {
		t.Fatal(err)
	}
	if analysis == nil || analysis.Quality == nil {
		t.Fatal("run returned no analysis or no quality assessment")
	}
	for _, f := range []string{"profile.json", "trace.json", "concmap.txt", "fmf.txt", "flg.dot"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("dump artifact %s missing: %v", f, err)
		}
	}
	// Replay from the dumped profile+trace.
	if _, err := run("B", "bus4", "auto", 7, 2, 4, 1, 20, false, false,
		filepath.Join(dir, "profile.json"), filepath.Join(dir, "trace.json"), "", "", none(t), false); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

func TestRunProgramFileMode(t *testing.T) {
	src := `
program t
struct s { a i64 b i64 w i64 }
proc reader { loop 200 { read s.a loopvar  read s.b loopvar  compute 20 } }
proc writer { loop 200 { write s.w shared 0  compute 30 } }
proc m { call reader call writer }
arena s 128
thread 0 m iters 3
thread 1 m iters 3
thread 2 m iters 3
thread 3 m iters 3
`
	path := filepath.Join(t.TempDir(), "t.slp")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// -measure 2 exercises the multi-struct measurement loop end to end.
	if _, err := runProgramFile(path, "s", "bus4", "both", 3, 4, 1, 20, true, "", none(t), false, 2, exec.SimSampled, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := runProgramFile(path, "nope", "bus4", "auto", 3, 4, 1, 20, false, "", none(t), false, 0, exec.SimExact, 0); err == nil {
		t.Fatal("unknown struct accepted")
	}
	if _, err := runProgramFile(path, "s", "nowhere", "auto", 3, 4, 1, 20, false, "", none(t), false, 0, exec.SimExact, 0); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

// TestRunProgramFileInject drives the DSL path with a composed fault spec:
// -inject must now be honored through driver.Collect rather than silently
// ignored outside the built-in workload.
func TestRunProgramFileInject(t *testing.T) {
	src := `
program t2
struct s { a i64 b i64 }
proc m { loop 150 { read s.a loopvar  write s.b loopvar  compute 25 } }
arena s 64
thread 0 m iters 4
thread 1 m iters 4
`
	path := filepath.Join(t.TempDir(), "t2.slp")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := faults.ParseSpec("all=0.6,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runProgramFile(path, "s", "bus4", "auto", 3, 4, 1, 20, false, "", spec, false, 0, exec.SimExact, 0); err != nil {
		t.Fatalf("graceful mode errored on injected faults: %v", err)
	}
}

// TestLintTreeSkipsCorruptFiles pins the -lint-dir degradation contract:
// a corrupt .slp alongside good ones yields the good files' aggregated
// findings plus a lint-skipped diagnostic, not an aborted run.
func TestLintTreeSkipsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	clean, err := os.ReadFile("../../examples/lint/clean.slp")
	if err != nil {
		t.Fatal(err)
	}
	bad, err := os.ReadFile("../../examples/lint/falseshare.slp")
	if err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "sub")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "clean.slp"), clean, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "falseshare.slp"), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "corrupt.slp"), []byte("program {{{ not a program"), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := lintTree(dir)
	if err != nil {
		t.Fatalf("one corrupt file aborted the tree lint: %v", err)
	}
	var skipped, falseSharing int
	for _, f := range findings {
		switch f.Code {
		case staticshare.CodeLintSkipped:
			skipped++
			if !strings.Contains(f.Message, "corrupt.slp") {
				t.Errorf("lint-skipped diagnostic does not name the corrupt file: %q", f.Message)
			}
		case staticshare.CodeFalseSharing:
			falseSharing++
		}
	}
	if skipped != 1 {
		t.Errorf("got %d lint-skipped findings, want 1", skipped)
	}
	if falseSharing == 0 {
		t.Error("good files' findings were lost: no static-false-sharing aggregated")
	}

	// A tree where nothing lints is still an error.
	empty := t.TempDir()
	if _, err := lintTree(empty); err == nil {
		t.Error("empty tree should error")
	}
	allBad := t.TempDir()
	if err := os.WriteFile(filepath.Join(allBad, "x.slp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lintTree(allBad); err == nil {
		t.Error("tree with only corrupt files should error")
	}
}

// TestRunGoLint pins the -go-lint exit-code contract on the golden
// example packages: clean exits 0, false sharing exits 3, and a bad
// pattern exits 1.
func TestRunGoLint(t *testing.T) {
	if got := runGoLint("../../examples/gofront/clean", "", ""); got != 0 {
		t.Errorf("clean package: exit %d, want 0", got)
	}
	jsonOut := filepath.Join(t.TempDir(), "findings.json")
	if got := runGoLint("../../examples/gofront/falseshare", jsonOut, ""); got != 3 {
		t.Errorf("falseshare package: exit %d, want 3", got)
	}
	raw, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), staticshare.CodeFalseSharing) {
		t.Errorf("-lint-json output lacks %s: %s", staticshare.CodeFalseSharing, raw)
	}
	if got := runGoLint("../../examples/gofront/no-such-dir", "", ""); got != 1 {
		t.Errorf("missing dir: exit %d, want 1", got)
	}
}

// TestRunGoLintZeroMatch pins the satellite contract: a pattern set that
// matches no packages at all must exit 1 (after printing the skipped
// diagnostics), while a dead pattern mixed with a live package degrades
// to the skipped finding and exits 3.
func TestRunGoLintZeroMatch(t *testing.T) {
	if got := runGoLint("../../examples/gofront/ghost/...", "", ""); got != 1 {
		t.Errorf("zero-match recursive pattern: exit %d, want 1", got)
	}
	if got := runGoLint("../../examples/gofront/ghost", "", ""); got != 1 {
		t.Errorf("zero-match plain pattern: exit %d, want 1", got)
	}
	got := runGoLint("../../examples/gofront/ghost/...,../../examples/gofront/clean", "", "")
	if got != 3 {
		t.Errorf("mixed dead+live patterns: exit %d, want 3 (skipped finding)", got)
	}
}

// TestLintTreeParallelDeterminism pins the -lint-dir fan-out: the ranked
// findings must be byte-identical at any worker count.
func TestLintTreeParallelDeterminism(t *testing.T) {
	saved := parallel.Limit()
	defer parallel.SetLimit(saved)

	var ref string
	for _, j := range []int{1, 2, 8} {
		parallel.SetLimit(j)
		findings, err := lintTree("../../examples")
		if err != nil {
			t.Fatalf("-j %d: %v", j, err)
		}
		staticshare.Rank(findings)
		raw, err := staticshare.MarshalFindings(findings)
		if err != nil {
			t.Fatal(err)
		}
		if ref == "" {
			ref = string(raw)
		} else if string(raw) != ref {
			t.Fatalf("-j %d findings differ from -j 1", j)
		}
	}
}

func TestRunRankMode(t *testing.T) {
	if _, err := runRank("", "bus4", 3, 2, 4, 1, none(t), false); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := run("Z", "bus4", "auto", 1, 1, 1, 1, 20, false, false, "", "", "", "", none(t), false); err == nil {
		t.Fatal("unknown label accepted")
	}
	if _, err := run("A", "vax", "auto", 1, 1, 1, 1, 20, false, false, "", "", "", "", none(t), false); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if _, err := run("A", "bus4", "sideways", 1, 1, 1, 1, 20, false, false, "", "", "", "", none(t), false); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestRunInjectedFaultsDegradeGracefully drives the CLI path with a
// full-severity composed fault spec: the tool must produce an advisory (or
// a clean error under -strict), never panic.
func TestRunInjectedFaultsDegradeGracefully(t *testing.T) {
	spec, err := faults.ParseSpec("all=0.6,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := run("B", "bus4", "auto", 7, 2, 4, 1, 20, false, false, "", "", "", "", spec, false)
	if err != nil {
		t.Fatalf("graceful mode errored on injected faults: %v", err)
	}
	if got := qualityGate(analysis); got == 0 {
		t.Fatalf("severity-0.6 faults passed the quality gate (exit %d, %s)", got, analysis.Quality)
	}
	if _, err := run("B", "bus4", "auto", 7, 2, 4, 1, 20, false, false, "", "", "", "", spec, true); err == nil {
		t.Fatal("strict mode accepted heavily faulted input")
	}
}

// TestQualityGateVerdicts pins the exit-code mapping the CI robustness
// smoke job relies on.
func TestQualityGateVerdicts(t *testing.T) {
	cases := []struct {
		score float64
		want  int
	}{
		{1.0, 0},
		{quality.SuspectBelow, 0},
		{quality.SuspectBelow - 0.01, 3},
		{quality.DegradedBelow - 0.01, 4},
	}
	a, err := run("B", "bus4", "auto", 7, 2, 4, 1, 20, false, false, "", "", "", "", none(t), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		a.Quality.Score = c.score
		if got := qualityGate(a); got != c.want {
			t.Fatalf("score %.2f: exit %d, want %d", c.score, got, c.want)
		}
	}
}

// Command layouttool is the reproduction of the paper's semi-automatic
// structure-layout tool (§4, Figure 3). It drives the whole pipeline for
// one of the kernel structs A..E of the built-in SDET-like workload:
//
//  1. collect a PBO profile and synchronized PMU samples by running the
//     workload under the baseline layouts on a collection machine,
//  2. build the struct's Field Layout Graph (CycleGain from affinity,
//     CycleLoss from CodeConcurrency joined with the field mapping file),
//  3. cluster it greedily and emit the suggested layout, together with the
//     evidence (intra-/inter-cluster weights, large positive and negative
//     edges) a programmer needs to adopt or adapt it,
//  4. optionally emit the incremental ("best", §5.2) layout that minimally
//     alters the hand-tuned baseline.
//
// In the paper the compiler and HP Caliper supply the inputs for arbitrary
// programs; here the workload is compiled in, and the intermediate products
// (profile, concurrency map, field mapping file, sample trace) can be
// written with -dump for inspection or for replay via -profile/-trace.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"

	"structlayout/internal/core"
	"structlayout/internal/diag"
	"structlayout/internal/driver"
	"structlayout/internal/exec"
	"structlayout/internal/faults"
	"structlayout/internal/fieldmap"
	"structlayout/internal/flg"
	"structlayout/internal/gofront"
	"structlayout/internal/irtext"
	"structlayout/internal/layout"
	"structlayout/internal/machine"
	"structlayout/internal/memo"
	"structlayout/internal/parallel"
	"structlayout/internal/profile"
	"structlayout/internal/quality"
	"structlayout/internal/report"
	"structlayout/internal/sampling"
	"structlayout/internal/staticshare"
	"structlayout/internal/transform"
	"structlayout/internal/workload"
)

func main() {
	var (
		programIn   = flag.String("program", "", "irtext program file; when set, -struct names a struct of that program")
		structLabel = flag.String("struct", "A", "kernel struct to lay out: A..E (built-in workload) or a struct name of -program")
		collectOn   = flag.String("collect-machine", "way16", "collection machine: bus4, way16 or superdome128")
		mode        = flag.String("mode", "both", "layout mode: auto, best or both")
		split       = flag.Bool("split", false, "also print the hot/cold structure-splitting advisory")
		rank        = flag.Bool("rank", false, "rank all structs by optimization potential instead of advising one")
		dotOut      = flag.String("dot", "", "write the struct's Field Layout Graph as Graphviz DOT to this file")
		seed        = flag.Int64("seed", 20070311, "collection seed")
		scripts     = flag.Int64("collect-scripts", 12, "SDET scripts per thread during collection")
		k1          = flag.Float64("k1", 4, "CycleGain scale constant")
		k2          = flag.Float64("k2", 1, "CycleLoss scale constant")
		topK        = flag.Int("topk", 20, "positive edges kept by the incremental mode")
		noAlias     = flag.Bool("no-alias-analysis", false, "disable the alias-analysis CycleLoss mitigation")
		profileIn   = flag.String("profile", "", "read the profile from this JSON file instead of collecting")
		traceIn     = flag.String("trace", "", "read the sample trace from this JSON file instead of collecting")
		dumpDir     = flag.String("dump", "", "write profile.json, trace.json, concmap.txt and fmf.txt to this directory")
		injectSpec  = flag.String("inject", "", `measurement-fault injection spec, e.g. "loss=0.5,drift=0.3,seed=7" or "all=0.5" (docs/FAULTS.md)`)
		strict      = flag.Bool("strict", false, "treat degraded measurement data as fatal instead of degrading gracefully")
		measureRuns = flag.Int("measure", 0, "with -program: also measure each struct's automatic layout individually over this many runs")
		jobs        = flag.Int("j", 0, "max parallel measured runs (default GOMAXPROCS)")
		showQuality = flag.Bool("quality", false, "print the measurement-quality assessment and gate the exit code on its verdict (0 OK, 3 SUSPECT, 4 DEGRADED)")
		cacheDir    = flag.String("cache-dir", "", "persist the measurement cache here; warm re-runs reuse identical collections and measurements")
		lintMode    = flag.Bool("lint", false, "run the static structure-layout linter (no measurement); exit 0 clean, 3 findings")
		lintDir     = flag.String("lint-dir", "", "lint every *.slp program under this directory, recursively (implies -lint)")
		goLint      = flag.String("go-lint", "", "lint Go packages (comma/space-separated dirs, \"dir/...\" recurses): extract goroutines, lock regions and struct accesses, run the static linter, print reordering suggestions; exit 0 clean, 3 findings")
		lintJSON    = flag.String("lint-json", "", "with -lint: also write the findings as JSON to this file (\"-\" for stdout)")
		cacheGC     = flag.Bool("cache-gc", false, "age out disk-tier cache entries (requires -cache-dir), print the pass summary, and exit")
		cacheGCAge  = flag.Duration("cache-gc-age", 720*time.Hour, "with -cache-gc: remove entries not touched within this duration (0 disables the age criterion)")
		cacheGCSize = flag.Int64("cache-gc-bytes", 0, "with -cache-gc: evict oldest entries until the disk tier fits this byte budget (0 = unlimited)")
		simFlag     = flag.String("sim", "", "simulation mode for -measure runs: exact (default) or sampled (extrapolated, approximate; collection stays exact)")
		shards      = flag.Int("shards", 0, "coherence-directory shard count (power of two; 0 = unsharded; results are byte-identical at any count)")
	)
	flag.Parse()
	if *jobs > 0 {
		parallel.SetLimit(*jobs)
	}
	if *cacheDir != "" {
		if err := memo.Shared().SetDir(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "layouttool:", err)
			os.Exit(2)
		}
	}
	if *cacheGC {
		os.Exit(runCacheGC(*cacheDir, *cacheGCAge, *cacheGCSize))
	}
	if *goLint != "" {
		os.Exit(runGoLint(*goLint, *lintJSON, *cacheDir))
	}
	if *lintMode || *lintDir != "" {
		os.Exit(runLint(*programIn, *lintDir, *lintJSON, *collectOn, *seed, *scripts))
	}
	spec, err := faults.ParseSpec(*injectSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "layouttool:", err)
		os.Exit(2)
	}
	simMode, err := exec.ParseSimMode(*simFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "layouttool:", err)
		os.Exit(2)
	}
	var analysis *core.Analysis
	if *rank {
		analysis, err = runRank(*programIn, *collectOn, *seed, *scripts, *k1, *k2, spec, *strict)
	} else if *programIn != "" {
		analysis, err = runProgramFile(*programIn, *structLabel, *collectOn, *mode, *seed, *k1, *k2, *topK, *split, *dotOut, spec, *strict, *measureRuns, simMode, *shards)
	} else {
		analysis, err = run(*structLabel, *collectOn, *mode, *seed, *scripts, *k1, *k2, *topK, *noAlias, *split, *profileIn, *traceIn, *dumpDir, *dotOut, spec, *strict)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "layouttool:", err)
		os.Exit(1)
	}
	if *showQuality {
		os.Exit(qualityGate(analysis))
	}
}

// qualityGate prints the composite measurement-quality assessment and maps
// its verdict to an exit code, so CI can assert that faulted collections
// are flagged: 0 for OK, 3 for SUSPECT, 4 for DEGRADED.
func qualityGate(analysis *core.Analysis) int {
	fmt.Printf("measurement quality: %s\n", analysis.Quality)
	switch analysis.QualityVerdict() {
	case quality.Suspect:
		return 3
	case quality.Degraded:
		return 4
	default:
		return 0
	}
}

// runCacheGC ages the disk-tier measurement cache and exits: 0 on a clean
// pass, 2 on usage or filesystem errors.
func runCacheGC(cacheDir string, maxAge time.Duration, maxBytes int64) int {
	if cacheDir == "" {
		fmt.Fprintln(os.Stderr, "layouttool: -cache-gc requires -cache-dir")
		return 2
	}
	res, err := memo.Shared().GC(time.Now(), maxAge, maxBytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "layouttool:", err)
		return 2
	}
	fmt.Printf("cache-gc %s: %s\n", cacheDir, res)
	return 0
}

// runLint runs the static structure-layout linter — no collection, no
// measurement — over a DSL program, a directory of them, or the built-in
// workload, and maps the outcome to an exit code the same way -quality
// does: 0 clean, 3 findings, 1 analysis error.
func runLint(programIn, lintDir, lintJSON, collectOn string, seed, scripts int64) int {
	var findings []staticshare.Finding
	var err error
	switch {
	case lintDir != "":
		findings, err = lintTree(lintDir)
	case programIn != "":
		findings, err = lintProgramFile(programIn)
	default:
		findings, err = lintBuiltin(collectOn, seed, scripts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "layouttool:", err)
		return 1
	}
	staticshare.Rank(findings)
	skipped := 0
	for _, f := range findings {
		if f.Code == staticshare.CodeLintSkipped {
			skipped++
		}
	}
	if len(findings) == 0 {
		fmt.Println("lint: no findings")
	} else {
		fmt.Printf("lint: %d finding(s)\n", len(findings))
		for _, f := range findings {
			fmt.Printf("  %-8s %-28s %s\n", f.Severity, f.Code, f.Message)
		}
	}
	if skipped > 0 {
		fmt.Printf("lint: %d file(s) skipped\n", skipped)
	}
	if lintJSON != "" {
		if jerr := writeFindingsJSON(findings, lintJSON); jerr != nil {
			fmt.Fprintln(os.Stderr, "layouttool:", jerr)
			return 1
		}
	}
	if len(findings) > 0 {
		return 3
	}
	return 0
}

// lintJSONSchemaVersion versions the -lint-json envelope so consumers
// can select on it before parsing the findings array. Bump it whenever
// the envelope or the Finding encoding changes incompatibly.
const lintJSONSchemaVersion = 1

// writeFindingsJSON writes ranked findings as a versioned JSON envelope
// ({schemaVersion, findings}) to a file or stdout.
func writeFindingsJSON(findings []staticshare.Finding, dest string) error {
	inner, err := staticshare.MarshalFindings(findings)
	if err != nil {
		return err
	}
	raw, err := json.MarshalIndent(struct {
		SchemaVersion int             `json:"schemaVersion"`
		Findings      json.RawMessage `json:"findings"`
	}{lintJSONSchemaVersion, inner}, "", "  ")
	if err != nil {
		return err
	}
	if dest == "-" {
		_, err = os.Stdout.Write(append(raw, '\n'))
		return err
	}
	return os.WriteFile(dest, append(raw, '\n'), 0o644)
}

// runGoLint lints real Go packages through the gofront extraction
// pipeline, memoizing per-package reports in the shared cache (with
// -cache-dir, persistently: a warm run replays untouched packages
// instead of re-typechecking them). Exit codes mirror -lint: 0 clean, 3
// findings, 1 when nothing could be analyzed at all. Per-package
// failures degrade to lint-skipped findings (which, being findings,
// also exit 3 — a partially-skipped run is not a clean one).
func runGoLint(patterns, lintJSON, cacheDir string) int {
	pats := strings.FieldsFunc(patterns, func(r rune) bool { return r == ',' || r == ' ' })
	cache := memo.Shared()
	before := cache.Stats()
	reports, err := gofront.Run(pats, gofront.Options{Cache: cache})
	if err != nil {
		fmt.Fprintln(os.Stderr, "layouttool:", err)
		return 1
	}
	fmt.Print(gofront.RenderText(reports))
	if cacheDir != "" {
		// Stats go to stderr so stdout stays byte-comparable across runs.
		d := cache.Stats().Sub(before)
		fmt.Fprintf(os.Stderr, "go-lint: cache %d hit(s) / %d miss(es)\n", d.Hits(), d.Misses)
	}
	analyzed := 0
	for _, r := range reports {
		if r.Err == nil {
			analyzed++
		}
	}
	findings := gofront.AllFindings(reports)
	if lintJSON != "" {
		if jerr := writeFindingsJSON(findings, lintJSON); jerr != nil {
			fmt.Fprintln(os.Stderr, "layouttool:", jerr)
			return 1
		}
	}
	if analyzed == 0 {
		fmt.Fprintln(os.Stderr, "layouttool: go-lint analyzed no packages")
		return 1
	}
	if len(findings) > 0 {
		return 3
	}
	return 0
}

// lintProgramFile lints one parsed DSL program against its declaration-
// order layouts.
func lintProgramFile(path string) ([]staticshare.Finding, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	file, err := irtext.Parse(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	findings, _, err := staticshare.LintFile(file, 128)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return findings, nil
}

// lintTree lints every *.slp file under root, aggregating the findings
// with the file path prefixed to each message. The walk collects paths
// serially (WalkDir order is deterministic), the per-file lint fans out
// over internal/parallel with gather-by-index, and the final Rank is a
// total order — so the output is byte-identical at any -j. One bad file
// must not kill the run: unreadable or unparseable inputs degrade to a
// per-file lint-skipped diagnostic and the walk continues; only a tree
// where nothing linted at all is an error.
func lintTree(root string) ([]staticshare.Finding, error) {
	var all []staticshare.Finding
	var paths []string
	skipped := 0
	skip := func(path string, err error) {
		skipped++
		all = append(all, staticshare.Finding{
			Severity: diag.Degraded,
			Code:     staticshare.CodeLintSkipped,
			Message:  fmt.Sprintf("%s: skipped: %s", path, strings.TrimPrefix(err.Error(), path+": ")),
		})
	}
	walkErr := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			if path == root {
				return err // the root itself is unusable: nothing to walk
			}
			skip(path, err)
			if d != nil && d.IsDir() {
				return fs.SkipDir
			}
			return nil
		}
		if !d.IsDir() && filepath.Ext(path) == ".slp" {
			paths = append(paths, path)
		}
		return nil
	})
	if walkErr != nil {
		return nil, walkErr
	}
	type fileRes struct {
		findings []staticshare.Finding
		err      error
	}
	results, _ := parallel.Map(len(paths), func(i int) (fileRes, error) {
		findings, ferr := lintProgramFile(paths[i])
		return fileRes{findings, ferr}, nil
	})
	linted := 0
	for i, res := range results {
		if res.err != nil {
			skip(paths[i], res.err)
			continue
		}
		linted++
		for _, f := range res.findings {
			f.Message = paths[i] + ": " + f.Message
			all = append(all, f)
		}
	}
	if linted == 0 {
		if skipped > 0 {
			return nil, fmt.Errorf("lint: every *.slp program under %s failed to lint (%d skipped)", root, skipped)
		}
		return nil, fmt.Errorf("lint: no *.slp programs under %s", root)
	}
	return all, nil
}

// lintBuiltin lints the built-in SDET workload against its hand-tuned
// baseline layouts, under the same thread/arena assignments the
// measurement harness uses.
func lintBuiltin(collectOn string, seed, scripts int64) ([]staticshare.Finding, error) {
	topo, err := machine.ByName(collectOn)
	if err != nil {
		return nil, err
	}
	params := workload.DefaultParams()
	params.ScriptsPerThread = scripts
	suite, err := workload.NewSuite(params)
	if err != nil {
		return nil, err
	}
	res, err := staticshare.Analyze(suite.Prog, *suite.StaticConfig(topo, seed))
	if err != nil {
		return nil, err
	}
	lineSize := int(params.Cache.LineSize)
	layouts := make(map[string]*layout.Layout, len(workload.Labels()))
	for _, label := range workload.Labels() {
		layouts[suite.Struct(label).Type.Name] = suite.Struct(label).Baseline(lineSize)
	}
	return res.Lint(layouts), nil
}

// runRank prints the whole-program struct ranking (the §5.1 key-structure
// identification step) for the built-in workload or a DSL program.
func runRank(programIn, collectOn string, seed, scripts int64, k1, k2 float64, spec *faults.Spec, strict bool) (*core.Analysis, error) {
	topo, err := machine.ByName(collectOn)
	if err != nil {
		return nil, err
	}
	var analysis *core.Analysis
	if programIn != "" {
		src, err := os.ReadFile(programIn)
		if err != nil {
			return nil, err
		}
		file, err := irtext.Parse(string(src))
		if err != nil {
			return nil, err
		}
		res, err := driver.Collect(file, driver.Config{Topo: topo, Seed: seed, Inject: spec}, nil)
		if err != nil {
			return nil, err
		}
		sc := staticshare.FileConfig(file)
		analysis, err = core.NewAnalysis(file.Prog, res.Profile, res.Trace, core.Options{
			LineSize:    128,
			SliceCycles: res.Cycles/64 + 1,
			Strict:      strict,
			FMF:         spec.ApplyFMF(fieldmap.Build(file.Prog), file.Prog),
			FLG:         flg.Options{K1: k1, K2: k2},
			Static:      &sc,
		})
		if err != nil {
			return nil, err
		}
	} else {
		params := workload.DefaultParams()
		params.ScriptsPerThread = scripts
		suite, err := workload.NewSuite(params)
		if err != nil {
			return nil, err
		}
		pf, trace, err := suite.Collect(topo, suite.BaselineLayouts(int(params.Cache.LineSize)), seed)
		if err != nil {
			return nil, err
		}
		analysis, err = core.NewAnalysis(suite.Prog, spec.ApplyProfile(pf), spec.ApplyTrace(trace), core.Options{
			LineSize:    int(params.Cache.LineSize),
			SliceCycles: workload.CollectSliceCycles,
			Strict:      strict,
			FMF:         spec.ApplyFMF(fieldmap.Build(suite.Prog), suite.Prog),
			FLG:         flg.Options{K1: k1, K2: k2, AliasOracle: workload.PrivateAliasOracle(suite.Prog)},
			Static:      suite.StaticConfig(topo, seed),
		})
		if err != nil {
			return nil, err
		}
	}
	ranks, err := analysis.RankStructs()
	if err != nil {
		return nil, err
	}
	fmt.Print(core.RankReport(ranks))
	return analysis, nil
}

// runProgramFile drives the tool over a user-supplied irtext program.
func runProgramFile(path, structName, collectOn, mode string, seed int64, k1, k2 float64, topK int, split bool, dotOut string, spec *faults.Spec, strict bool, measureRuns int, simMode exec.SimMode, shards int) (*core.Analysis, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	file, err := irtext.Parse(string(src))
	if err != nil {
		return nil, err
	}
	topo, err := machine.ByName(collectOn)
	if err != nil {
		return nil, err
	}
	if err := driver.ValidateThreads(file, topo); err != nil {
		return nil, err
	}
	st := file.Prog.Struct(structName)
	if st == nil {
		var names []string
		for _, s := range file.Prog.Structs {
			names = append(names, s.Name)
		}
		return nil, fmt.Errorf("program %s has no struct %q (structs: %v)", file.Prog.Name, structName, names)
	}
	// Shards applies to every run (byte-identical at any count); Sim only
	// to measured runs — Collect forces exact regardless, and sampled
	// measurements memoize under distinct keys from exact ones.
	cfg := driver.Config{Topo: topo, Seed: seed, Inject: spec,
		Sim: exec.SimConfig{Mode: simMode}, Shards: shards}
	fmt.Printf("collecting %s on %s...\n", file.Prog.Name, topo.Name)
	res, err := driver.Collect(file, cfg, nil)
	if err != nil {
		return nil, err
	}
	fmt.Printf("collected %d samples over %d cycles\n", len(res.Trace.Samples), res.Cycles)
	sc := staticshare.FileConfig(file)
	analysis, err := core.NewAnalysis(file.Prog, res.Profile, res.Trace, core.Options{
		LineSize:     cfg.LineSize(),
		SliceCycles:  res.Cycles/64 + 1, // ~64 slices over the run
		TopKPositive: topK,
		Strict:       strict,
		FMF:          spec.ApplyFMF(fieldmap.Build(file.Prog), file.Prog),
		FLG:          flg.Options{K1: k1, K2: k2},
		Static:       &sc,
	})
	if err != nil {
		return nil, err
	}
	orig, err := layout.Original(st, cfg.LineSize())
	if err != nil {
		return nil, err
	}
	if dotOut != "" {
		if err := writeDOT(analysis, structName, dotOut); err != nil {
			return nil, err
		}
	}
	if mode == "auto" || mode == "both" {
		sugg, err := analysis.Suggest(structName, orig)
		if err != nil {
			return nil, err
		}
		fmt.Println(sugg.Report.String())
	}
	if mode == "best" || mode == "both" {
		best, clusters, err := analysis.Best(structName, orig)
		if err != nil {
			return nil, err
		}
		fmt.Printf("==== incremental (\"best\") layout for struct %s ====\n", structName)
		fmt.Printf("constraint clusters: %d\n", len(clusters.Clusters))
		fmt.Print(best.Dump())
		fmt.Printf("\n-- movement from declaration order --\n%s", report.Diff(orig, best))
	}
	if split {
		adv, err := transform.Split(file.Prog, res.Profile, st, transform.Options{LineSize: cfg.LineSize()})
		if err != nil {
			return nil, err
		}
		fmt.Println(adv)
	}
	if measureRuns > 0 {
		base, err := driver.OriginalLayouts(file, cfg.LineSize())
		if err != nil {
			return nil, err
		}
		variants := make(map[string]*layout.Layout, len(base))
		for name, orig := range base {
			sugg, err := analysis.Suggest(name, orig)
			if err != nil {
				return nil, err
			}
			variants[name] = sugg.Auto
		}
		fmt.Printf("measuring per-struct automatic layouts on %s (%d runs each, -j %d)...\n",
			topo.Name, measureRuns, parallel.Limit())
		if simMode == exec.SimSampled {
			fmt.Println("note: measurements are interval-sampled (extrapolated, approximate); rerun with -sim=exact for exact counts")
		}
		ev, err := driver.Evaluate(file, cfg, base, variants, measureRuns, analysis.Quality)
		if err != nil {
			return nil, err
		}
		fmt.Print(ev.String())
	}
	return analysis, nil
}

// writeDOT renders a struct's FLG for Graphviz.
func writeDOT(analysis *core.Analysis, structName, path string) error {
	g, err := analysis.BuildFLG(structName)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.WriteDOT(f, false); err != nil {
		return err
	}
	fmt.Printf("wrote FLG graph to %s (render: dot -Tsvg %s -o flg.svg)\n", path, path)
	return nil
}

func run(structLabel, collectOn, mode string, seed, scripts int64, k1, k2 float64, topK int, noAlias, split bool, profileIn, traceIn, dumpDir, dotOut string, spec *faults.Spec, strict bool) (*core.Analysis, error) {
	ks := (&labelSet{}).lookup(structLabel)
	if ks == "" {
		return nil, fmt.Errorf("unknown struct %q (want A..E)", structLabel)
	}
	topo, err := machine.ByName(collectOn)
	if err != nil {
		return nil, err
	}

	params := workload.DefaultParams()
	params.ScriptsPerThread = scripts
	suite, err := workload.NewSuite(params)
	if err != nil {
		return nil, err
	}
	lineSize := int(params.Cache.LineSize)
	baselines := suite.BaselineLayouts(lineSize)

	var pf *profile.Profile
	var trace *sampling.Trace
	if profileIn != "" {
		pf, err = readProfile(profileIn, suite)
		if err != nil {
			return nil, err
		}
		if traceIn != "" {
			trace, err = readTrace(traceIn)
			if err != nil {
				return nil, err
			}
		}
		fmt.Printf("loaded profile from %s\n", profileIn)
	} else {
		fmt.Printf("collecting on %s (%d CPUs, %d scripts/thread)...\n", topo.Name, topo.NumCPUs(), scripts)
		pf, trace, err = suite.Collect(topo, baselines, seed)
		if err != nil {
			return nil, err
		}
		fmt.Printf("collected %d samples\n", len(trace.Samples))
	}

	opts := core.Options{
		LineSize:     lineSize,
		SliceCycles:  workload.CollectSliceCycles,
		TopKPositive: topK,
		Strict:       strict,
		FMF:          spec.ApplyFMF(fieldmap.Build(suite.Prog), suite.Prog),
		FLG:          flg.Options{K1: k1, K2: k2},
		Static:       suite.StaticConfig(topo, seed),
	}
	if !noAlias {
		opts.FLG.AliasOracle = workload.PrivateAliasOracle(suite.Prog)
	}
	analysis, err := core.NewAnalysis(suite.Prog, spec.ApplyProfile(pf), spec.ApplyTrace(trace), opts)
	if err != nil {
		return nil, err
	}
	if analysis.Diag.Len() > 0 {
		fmt.Fprintf(os.Stderr, "layouttool: data quality:\n%s", analysis.Diag)
	}

	if dumpDir != "" {
		if err := dumpArtifacts(dumpDir, suite, analysis, pf, trace); err != nil {
			return nil, err
		}
		fmt.Printf("wrote analysis artifacts to %s\n", dumpDir)
	}

	structName := suite.Struct(ks).Type.Name
	orig := baselines[ks]
	if dotOut != "" {
		if err := writeDOT(analysis, structName, dotOut); err != nil {
			return nil, err
		}
	}
	if mode == "auto" || mode == "both" {
		sugg, err := analysis.Suggest(structName, orig)
		if err != nil {
			return nil, err
		}
		fmt.Println(sugg.Report.String())
	}
	if mode == "best" || mode == "both" {
		best, clusters, err := analysis.Best(structName, orig)
		if err != nil {
			return nil, err
		}
		fmt.Printf("==== incremental (\"best\") layout for struct %s ====\n", structName)
		fmt.Printf("constraint clusters: %d\n", len(clusters.Clusters))
		fmt.Print(best.Dump())
		fmt.Printf("\n-- movement from baseline --\n%s", report.Diff(orig, best))
	}
	if mode != "auto" && mode != "best" && mode != "both" {
		return nil, fmt.Errorf("unknown mode %q", mode)
	}
	if split {
		st := suite.Struct(ks).Type
		adv, err := transform.Split(suite.Prog, pf, st, transform.Options{LineSize: lineSize})
		if err != nil {
			return nil, err
		}
		fmt.Println(adv)
	}
	return analysis, nil
}

// labelSet validates struct labels.
type labelSet struct{}

func (labelSet) lookup(s string) string {
	for _, l := range workload.Labels() {
		if l == s {
			return l
		}
	}
	return ""
}

func readProfile(path string, suite *workload.Suite) (*profile.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return profile.ReadJSON(f, suite.Prog)
}

func readTrace(path string) (*sampling.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sampling.ReadJSON(f)
}

func dumpArtifacts(dir string, suite *workload.Suite, analysis *core.Analysis, pf *profile.Profile, trace *sampling.Trace) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	if err := write("profile.json", func(f *os.File) error { return pf.WriteJSON(f) }); err != nil {
		return err
	}
	if trace != nil {
		if err := write("trace.json", func(f *os.File) error { return trace.WriteJSON(f) }); err != nil {
			return err
		}
	}
	if analysis.Concurrency != nil {
		if err := write("concmap.txt", func(f *os.File) error {
			return analysis.Concurrency.WriteText(f, suite.Prog)
		}); err != nil {
			return err
		}
	}
	return write("fmf.txt", func(f *os.File) error {
		return fieldmap.Build(suite.Prog).WriteText(f)
	})
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"structlayout/internal/experiments"
)

func TestRunFig9Quick(t *testing.T) {
	cfg := experiments.DefaultConfig()
	cfg.Runs = 1
	if err := run("fig9", cfg, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	cfg := experiments.DefaultConfig()
	cfg.Runs = 1
	if err := run("fig99", cfg, nil, nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestBenchCheckRegression exercises the -check gate without running the
// pipeline: a faster run passes, a >25% slower run fails.
func TestBenchCheckRegression(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := os.WriteFile(base, []byte(`{"runs": 2, "short": true, "total_seconds": 10}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ok := &benchReport{Runs: 2, Short: true, TotalSeconds: 11}
	if err := checkRegression(ok, base); err != nil {
		t.Fatalf("10%% slower run rejected: %v", err)
	}
	slow := &benchReport{Runs: 2, Short: true, TotalSeconds: 14}
	if err := checkRegression(slow, base); err == nil {
		t.Fatal("40% regression accepted")
	}
	if err := checkRegression(ok, filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing baseline accepted")
	}
}

package main

import (
	"testing"

	"structlayout/internal/experiments"
)

func TestRunFig9Quick(t *testing.T) {
	cfg := experiments.DefaultConfig()
	cfg.Runs = 1
	if err := run("fig9", cfg, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	cfg := experiments.DefaultConfig()
	cfg.Runs = 1
	if err := run("fig99", cfg, nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

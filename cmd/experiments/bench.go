package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"structlayout/internal/coherence"
	"structlayout/internal/exec"
	"structlayout/internal/experiments"
	"structlayout/internal/machine"
	"structlayout/internal/memo"
	"structlayout/internal/parallel"
)

// benchStage is one timed stage of the pipeline, with the measurement
// cache's traffic attributed to it (deltas of the shared memo counters
// across the stage).
type benchStage struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	// MemoHits counts measurements/collections this stage reused (memory +
	// disk tier); MemoMisses counts the ones it computed.
	MemoHits   uint64 `json:"memo_hits"`
	MemoMisses uint64 `json:"memo_misses"`
}

// benchReport is the regression-tracking artifact (BENCH_pipeline.json).
// The primary (gated) numbers are the parallel cold pass; a serial cold
// pass is recorded alongside so the parallel fast path's benefit — and any
// regression confined to one of the two — stays visible.
type benchReport struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Jobs       int    `json:"jobs"`
	Runs       int    `json:"runs"`
	Short      bool   `json:"short"`
	// NsPerAccess and AllocsPerAccess measure the coherence simulator's
	// inner loop (Bus4, 128 B lines, 128×8 cache) outside the pipeline.
	NsPerAccess     float64      `json:"ns_per_access"`
	AllocsPerAccess float64      `json:"allocs_per_access"`
	Stages          []benchStage `json:"stages"`
	TotalSeconds    float64      `json:"total_seconds"`
	// SerialStages/SerialSeconds are a second cold pass at -j 1.
	SerialStages  []benchStage `json:"serial_stages,omitempty"`
	SerialSeconds float64      `json:"serial_seconds,omitempty"`
	// Memo totals across the parallel pass, split by tier. A warm
	// -cache-dir run shows them as disk hits; in-process dedup shows as
	// memory hits.
	MemoMemHits  uint64 `json:"memo_mem_hits"`
	MemoDiskHits uint64 `json:"memo_disk_hits"`
	MemoMisses   uint64 `json:"memo_misses"`
}

// runBench times every stage of `experiments all` twice — a cold serial
// pass at -j 1, then a cold parallel pass at the configured -j (the gated
// headline) — microbenchmarks the coherence simulator, and writes the
// report. With a baseline (-check) it fails when total wall-clock, any
// stage, or ns/access regresses past its gate.
func runBench(cfg experiments.Config, short bool, out, check string) error {
	if short {
		cfg.Runs = 2
	}
	// The simulator itself is allocation-free on its hot path; the GC cycles
	// a bench pass triggers come from memo encoding and analysis churn, and
	// at the default 100% heap-growth target they cost over 10% of a cold
	// pass. Relax the target for the benchmark process only, unless the
	// operator pinned one explicitly.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}
	jobs := parallel.Limit()
	rep := &benchReport{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Jobs:       jobs,
		Runs:       cfg.Runs,
		Short:      short,
	}
	rep.NsPerAccess, rep.AllocsPerAccess = benchCoherence()
	fmt.Printf("coherence simulator: %.1f ns/access, %.3f allocs/access\n", rep.NsPerAccess, rep.AllocsPerAccess)

	// Serial cold pass first: it shares nothing with the parallel pass
	// (the in-memory memo tier is cleared between them), so both are cold.
	fmt.Printf("serial pass (-j 1):\n")
	parallel.SetLimit(1)
	memo.Shared().Clear()
	var err error
	rep.SerialStages, rep.SerialSeconds, err = benchPass(cfg, short)
	if err != nil {
		return err
	}
	fmt.Printf("serial total: %.2fs\n", rep.SerialSeconds)

	// Parallel cold pass: the gated headline numbers.
	fmt.Printf("parallel pass (-j %d):\n", jobs)
	parallel.SetLimit(jobs)
	memo.Shared().Clear()
	rep.Stages, rep.TotalSeconds, err = benchPass(cfg, short)
	if err != nil {
		return err
	}
	total := memo.Shared().Stats()
	rep.MemoMemHits, rep.MemoDiskHits, rep.MemoMisses = total.MemHits, total.DiskHits, total.Misses
	fmt.Printf("total: %.2fs at -j %d (%d runs/config), memo %d mem + %d disk hits / %d misses\n",
		rep.TotalSeconds, rep.Jobs, rep.Runs, total.MemHits, total.DiskHits, total.Misses)

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if check != "" {
		return checkRegression(rep, check)
	}
	return nil
}

// benchPass runs every stage of `experiments all` — plus the Superdome128
// robustness sweep in sampled mode, feasible only since interval sampling —
// against a cold in-memory cache, and returns the timed stages.
func benchPass(cfg experiments.Config, short bool) ([]benchStage, float64, error) {
	severities := experiments.DefaultSeverities
	if short {
		severities = []float64{0, 0.5}
	}
	start := time.Now()
	var p *experiments.Pipeline
	stages := []struct {
		name string
		fn   func() error
	}{
		{"collect+analyze", func() error {
			var err error
			p, err = experiments.NewPipeline(cfg)
			return err
		}},
		{"fig8", func() error { _, err := p.Fig8(); return err }},
		{"fig9", func() error { _, err := p.Fig9(); return err }},
		{"fig10", func() error { _, err := p.Fig10(); return err }},
		{"stability", func() error { _, err := p.ConcurrencyStability(20); return err }},
		{"predict", func() error { _, err := p.PredictionAccuracy(); return err }},
		{"robustness", func() error {
			_, err := experiments.Robustness(cfg, nil, severities, nil)
			return err
		}},
		{"sweep128-sampled", func() error {
			// The long-open Superdome128 robustness sweep: a 128-way exact
			// sweep is wall-clock prohibitive, so it runs interval-sampled
			// (bounded error, see docs/PERF.md) and is gated like any stage.
			scfg := cfg
			scfg.Sim = exec.SimConfig{Mode: exec.SimSampled}
			_, err := experiments.Robustness(scfg, nil, severities, machine.Superdome128())
			return err
		}},
	}
	var out []benchStage
	memoBefore := memo.Shared().Stats()
	for _, st := range stages {
		t0 := time.Now()
		if err := st.fn(); err != nil {
			return nil, 0, fmt.Errorf("bench %s: %w", st.name, err)
		}
		secs := time.Since(t0).Seconds()
		memoNow := memo.Shared().Stats()
		d := memoNow.Sub(memoBefore)
		memoBefore = memoNow
		out = append(out, benchStage{
			Name: st.name, Seconds: secs,
			MemoHits: d.Hits(), MemoMisses: d.Misses,
		})
		fmt.Printf("  %-16s %7.2fs  (memo %d hit / %d miss)\n", st.name, secs, d.Hits(), d.Misses)
	}
	return out, time.Since(start).Seconds(), nil
}

// Per-stage regression gating. Stages shorter than stageGateFloor seconds
// in the baseline are too noisy to gate (a scheduler hiccup doubles a
// 100 ms stage); long stages get a looser multiplier than the total
// because single-stage variance doesn't average out. ns/access gates
// loosest of all: it is machine-dependent, so the gate only catches
// algorithmic regressions of the simulator's inner loop (a lost fast
// path roughly doubles it), never CI-runner variance.
const (
	totalGateRatio = 1.25
	stageGateRatio = 1.5
	stageGateFloor = 0.5 // seconds in the baseline
	nsGateRatio    = 1.6
)

// checkRegression compares against a committed baseline report: the total
// wall-clock gates at totalGateRatio, and each stage present in both
// reports gates at stageGateRatio once its baseline time clears the noise
// floor — so one stage regressing 2× can no longer hide inside a total
// that other stages' improvements pulled back under the limit.
func checkRegression(rep *benchReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench baseline %s: %w", path, err)
	}
	if base.TotalSeconds <= 0 {
		return fmt.Errorf("bench baseline %s has no total_seconds", path)
	}
	if base.Runs != rep.Runs || base.Short != rep.Short {
		fmt.Printf("note: baseline config differs (runs %d vs %d, short %v vs %v); comparing anyway\n",
			base.Runs, rep.Runs, base.Short, rep.Short)
	}
	ratio := rep.TotalSeconds / base.TotalSeconds
	fmt.Printf("wall-clock vs baseline %s: %.2fx (%.2fs vs %.2fs)\n", path, ratio, rep.TotalSeconds, base.TotalSeconds)
	var failures []string
	if ratio > totalGateRatio {
		failures = append(failures, fmt.Sprintf("total regressed %.0f%% (limit %.0f%%)",
			(ratio-1)*100, (totalGateRatio-1)*100))
	}
	baseStages := make(map[string]float64, len(base.Stages))
	for _, st := range base.Stages {
		baseStages[st.Name] = st.Seconds
	}
	for _, st := range rep.Stages {
		bs, ok := baseStages[st.Name]
		if !ok || bs < stageGateFloor {
			continue
		}
		if r := st.Seconds / bs; r > stageGateRatio {
			failures = append(failures, fmt.Sprintf("stage %s regressed %.2fx (%.2fs vs %.2fs, limit %.2fx)",
				st.Name, r, st.Seconds, bs, stageGateRatio))
		}
	}
	if base.NsPerAccess > 0 && rep.NsPerAccess > 0 {
		if r := rep.NsPerAccess / base.NsPerAccess; r > nsGateRatio {
			failures = append(failures, fmt.Sprintf("ns/access regressed %.2fx (%.1f vs %.1f, limit %.2fx)",
				r, rep.NsPerAccess, base.NsPerAccess, nsGateRatio))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: %s", strings.Join(failures, "; "))
	}
	return nil
}

// benchCoherence measures the simulator's per-access cost the same way the
// BenchmarkCoherenceAccess micro-benchmark does: a deterministic SDET-like
// access mix (mostly-read scans plus contended hot-line writes) on the
// 4-way bus machine.
func benchCoherence() (nsPerAccess, allocsPerAccess float64) {
	const (
		streamLen = 1 << 16
		iters     = 1 << 20
		maxAddr   = 1 << 20
	)
	topo := machine.Bus4()
	sys, err := coherence.NewSystem(topo, coherence.Config{LineSize: 128, Sets: 128, Ways: 8})
	if err != nil {
		return 0, 0
	}
	sys.ReserveDirectory(maxAddr)
	rng := rand.New(rand.NewSource(42))
	cpu := make([]int, streamLen)
	addr := make([]int64, streamLen)
	write := make([]bool, streamLen)
	for i := range cpu {
		cpu[i] = rng.Intn(topo.NumCPUs())
		if rng.Intn(10) == 0 {
			addr[i] = 128 + int64(rng.Intn(16))*8
			write[i] = true
		} else {
			addr[i] = 128 + rng.Int63n(maxAddr-256)
			write[i] = rng.Intn(4) == 0
		}
	}
	// Warm up the caches and directory, then measure.
	for i := 0; i < streamLen; i++ {
		sys.Access(cpu[i], addr[i], 8, write[i])
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		j := i % streamLen
		sys.Access(cpu[j], addr[j], 8, write[j])
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	return float64(elapsed.Nanoseconds()) / iters, float64(m1.Mallocs-m0.Mallocs) / iters
}

// golintbench.go times the Go-package static linter over the committed
// real-world corpus (examples/corpus + examples/gofront) and writes
// BENCH_golint.json: the regression artifact behind the tentpole's
// speedup claims. Three stages run back to back —
//
//	exact         the pre-summary configuration: exact per-access-pair
//	              classification, a fresh typechecker importer per
//	              package, serial (-j 1), no cache
//	summary-cold  the production path: summary-based classification,
//	              pooled importers, parallel, cold cache (every package
//	              misses once)
//	summary-warm  the same run again: every package must replay from
//	              the cache with zero re-analysis
//
// and the stage asserts, unconditionally: the exact and summary findings
// are byte-identical, the cold summary pass beats the exact walk by
// coldSpeedupFloor, and the warm pass misses nothing. -check adds the
// usual per-stage wall-clock gates against the committed baseline.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"structlayout/internal/gofront"
	"structlayout/internal/memo"
	"structlayout/internal/parallel"
	"structlayout/internal/staticshare"
)

// golintPatterns is the committed corpus the bench (and the CI smoke
// job) runs over.
var golintPatterns = []string{"examples/corpus/...", "examples/gofront/..."}

// coldSpeedupFloor is the acceptance gate for the tentpole: the cold
// summary-based parallel pass must beat the exact serial walk by at
// least this factor.
const coldSpeedupFloor = 3.0

// golintReport is the BENCH_golint.json artifact.
type golintReport struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Jobs       int          `json:"jobs"`
	Packages   int          `json:"packages"`
	Stages     []benchStage `json:"stages"`
	// ColdSpeedup is exact seconds / summary-cold seconds — the gated
	// headline.
	ColdSpeedup float64 `json:"cold_speedup"`
	// WarmMisses must be zero: a warm run that re-analyzes anything is an
	// invalidation bug.
	WarmMisses uint64 `json:"warm_misses"`
}

// runGoLintBench times the three linter configurations and writes the
// report. Gates that need no baseline (findings parity, the speedup
// floor, zero warm misses) always apply; -check layers the wall-clock
// regression gates on top.
func runGoLintBench(out, check string) error {
	jobs := parallel.Limit()
	defer parallel.SetLimit(jobs)
	rep := &golintReport{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Jobs:       jobs,
	}
	cache := memo.New()

	type stageSpec struct {
		name string
		opts gofront.Options
		jobs int
	}
	specs := []stageSpec{
		{"exact", gofront.Options{ExactClassify: true, FreshImporters: true}, 1},
		{"summary-cold", gofront.Options{Cache: cache}, jobs},
		{"summary-warm", gofront.Options{Cache: cache}, jobs},
	}
	findingsJSON := make(map[string]string, len(specs))
	seconds := make(map[string]float64, len(specs))
	for _, spec := range specs {
		parallel.SetLimit(spec.jobs)
		before := cache.Stats()
		t0 := time.Now()
		reports, err := gofront.Run(golintPatterns, spec.opts)
		secs := time.Since(t0).Seconds()
		if err != nil {
			return fmt.Errorf("golint-bench %s: %w", spec.name, err)
		}
		analyzed := 0
		for _, r := range reports {
			if r.Err != nil {
				return fmt.Errorf("golint-bench %s: %s: %w", spec.name, r.Package, r.Err)
			}
			analyzed++
		}
		raw, err := staticshare.MarshalFindings(gofront.AllFindings(reports))
		if err != nil {
			return err
		}
		findingsJSON[spec.name] = string(raw)
		seconds[spec.name] = secs
		d := cache.Stats().Sub(before)
		rep.Packages = analyzed
		rep.Stages = append(rep.Stages, benchStage{
			Name: spec.name, Seconds: secs,
			MemoHits: d.Hits(), MemoMisses: d.Misses,
		})
		fmt.Printf("  %-13s %6.2fs  (-j %d, %d package(s), memo %d hit / %d miss)\n",
			spec.name, secs, spec.jobs, analyzed, d.Hits(), d.Misses)
		if spec.name == "summary-warm" {
			rep.WarmMisses = d.Misses
		}
	}

	// The gates that define the tentpole, baseline or not.
	var failures []string
	if findingsJSON["exact"] != findingsJSON["summary-cold"] {
		failures = append(failures, "summary findings differ from the exact walk")
	}
	if findingsJSON["summary-cold"] != findingsJSON["summary-warm"] {
		failures = append(failures, "warm replay changed the findings")
	}
	rep.ColdSpeedup = seconds["exact"] / seconds["summary-cold"]
	fmt.Printf("cold speedup vs exact walk: %.2fx (floor %.1fx), warm misses: %d\n",
		rep.ColdSpeedup, coldSpeedupFloor, rep.WarmMisses)
	if rep.ColdSpeedup < coldSpeedupFloor {
		failures = append(failures, fmt.Sprintf("cold speedup %.2fx below the %.1fx floor", rep.ColdSpeedup, coldSpeedupFloor))
	}
	if rep.WarmMisses != 0 {
		failures = append(failures, fmt.Sprintf("warm run re-analyzed %d package(s)", rep.WarmMisses))
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if check != "" {
		if err := checkGoLintRegression(rep, check); err != nil {
			failures = append(failures, err.Error())
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("golint-bench: %s", strings.Join(failures, "; "))
	}
	return nil
}

// checkGoLintRegression gates stage wall-clock against the committed
// baseline, with the same ratio/noise-floor policy as the pipeline
// bench.
func checkGoLintRegression(rep *golintReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("golint baseline: %w", err)
	}
	var base golintReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("golint baseline %s: %w", path, err)
	}
	baseStages := make(map[string]float64, len(base.Stages))
	for _, st := range base.Stages {
		baseStages[st.Name] = st.Seconds
	}
	var failures []string
	for _, st := range rep.Stages {
		bs, ok := baseStages[st.Name]
		if !ok || bs < stageGateFloor {
			continue
		}
		if r := st.Seconds / bs; r > stageGateRatio {
			failures = append(failures, fmt.Sprintf("stage %s regressed %.2fx (%.2fs vs %.2fs, limit %.2fx)",
				st.Name, r, st.Seconds, bs, stageGateRatio))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%s", strings.Join(failures, "; "))
	}
	return nil
}

// Command experiments regenerates the paper's evaluation section (§5):
//
//	experiments fig8       Figure 8: auto + sort-by-hotness vs baseline, 128-way
//	experiments fig9       Figure 9: auto vs baseline, 4-way
//	experiments fig10      Figure 10: best layout per struct, 128-way
//	experiments stability  §4.3: concurrency-map stability across machines
//	experiments robustness fault-severity sweep: layout quality vs corrupted inputs
//	experiments quality    analyze-only sweep calibrating the quality-score thresholds
//	experiments simcheck   validate -sim=sampled against exact on the figure suite
//	experiments all        everything
//	experiments bench      time the pipeline and write BENCH_pipeline.json
//	experiments golint-bench  time the Go-package linter over the corpus
//	                          and write BENCH_golint.json (run from the
//	                          repository root)
//
// Measured runs fan out over a worker pool (-j, default GOMAXPROCS); every
// figure is byte-identical at any -j because seeds derive from run indices
// and results gather by index.
//
// The absolute throughputs come from the machine simulator, not an HP
// Superdome, so only the shape of each figure — who wins, by roughly what
// factor, where the crossovers fall — is expected to match the paper.
// EXPERIMENTS.md records the paper-versus-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"structlayout/internal/exec"
	"structlayout/internal/experiments"
	"structlayout/internal/faults"
	"structlayout/internal/machine"
	"structlayout/internal/memo"
	"structlayout/internal/parallel"
)

func main() {
	var (
		runs     = flag.Int("runs", 10, "measured runs per configuration (the paper uses 10)")
		quick    = flag.Bool("quick", false, "3 runs per configuration for a fast look")
		seed     = flag.Int64("seed", 20070311, "base seed")
		inject   = flag.String("inject", "", `fault shape swept by the robustness experiment (default "all=1"); see docs/FAULTS.md`)
		machName = flag.String("machine", "", "measurement machine for the robustness sweep: bus4, way16 or superdome128 (default bus4)")
		jobs     = flag.Int("j", 0, "max parallel measured runs (default GOMAXPROCS)")
		short    = flag.Bool("short", false, "bench: reduced configuration for CI smoke runs")
		benchOut = flag.String("out", "BENCH_pipeline.json", "bench: write the timing report to this file")
		check    = flag.String("check", "", "bench: fail if wall-clock regresses >25% against this baseline report")
		cacheDir = flag.String("cache-dir", "", "persist the measurement cache here; warm re-runs reuse identical measurements")
		simFlag  = flag.String("sim", "", "simulation mode for measured runs: exact (default) or sampled (extrapolated, approximate; collection stays exact)")
		shards   = flag.Int("shards", 0, "coherence-directory shard count (power of two; 0 = unsharded; results are byte-identical at any count)")
	)
	flag.Parse()
	if *jobs > 0 {
		parallel.SetLimit(*jobs)
	}
	if *cacheDir != "" {
		if err := memo.Shared().SetDir(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
	}
	what := flag.Arg(0)
	if what == "" {
		what = "all"
	}
	cfg := experiments.DefaultConfig()
	cfg.Runs = *runs
	if *quick {
		cfg.Runs = 3
	}
	cfg.BaseSeed = *seed
	simMode, err := exec.ParseSimMode(*simFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	cfg.Sim = exec.SimConfig{Mode: simMode}
	cfg.Shards = *shards
	var spec *faults.Spec
	if *inject != "" {
		var err error
		spec, err = faults.ParseSpec(*inject)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
	}
	var topo *machine.Topology
	if *machName != "" {
		var err error
		topo, err = machine.ByName(*machName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
	}

	switch what {
	case "bench":
		err = runBench(cfg, *short, *benchOut, *check)
	case "golint-bench":
		out := *benchOut
		outSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "out" {
				outSet = true
			}
		})
		if !outSet {
			out = "BENCH_golint.json"
		}
		err = runGoLintBench(out, *check)
	case "quality":
		err = runQuality(cfg, spec)
	case "simcheck":
		err = runSimCheck(cfg)
	default:
		err = run(what, cfg, spec, topo)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// runSimCheck validates -sim=sampled differentially against exact on the
// full figure suite, asserting the documented error bound (CI runs this
// in the bench-smoke job).
func runSimCheck(cfg experiments.Config) error {
	start := time.Now()
	res, err := experiments.SimCheck(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res)
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
	return res.Err()
}

// runQuality prints the analyze-only calibration sweep behind the quality
// thresholds: a denser severity grid than the robustness table, skipping
// the throughput measurements, so re-running while tuning is cheap.
func runQuality(cfg experiments.Config, spec *faults.Spec) error {
	start := time.Now()
	severities := []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.35, 0.5, 0.75, 0.9}
	points, err := experiments.QualityCalibration(cfg, spec, severities)
	if err != nil {
		return err
	}
	fmt.Print(experiments.QualityReport(points))
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func run(what string, cfg experiments.Config, spec *faults.Spec, topo *machine.Topology) error {
	start := time.Now()
	fmt.Printf("collection phase on %s...\n", cfg.CollectTopo.Name)
	p, err := experiments.NewPipeline(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("pipeline ready in %v (%d runs per configuration)\n\n", time.Since(start).Round(time.Millisecond), cfg.Runs)

	type job struct {
		name string
		fn   func() error
	}
	jobs := map[string]job{
		"fig8": {"Figure 8", func() error {
			f, err := p.Fig8()
			if err != nil {
				return err
			}
			fmt.Println(f)
			return nil
		}},
		"fig9": {"Figure 9", func() error {
			f, err := p.Fig9()
			if err != nil {
				return err
			}
			fmt.Println(f)
			return nil
		}},
		"fig10": {"Figure 10", func() error {
			f, err := p.Fig10()
			if err != nil {
				return err
			}
			fmt.Println(f)
			return nil
		}},
		"stability": {"Concurrency stability", func() error {
			r, err := p.ConcurrencyStability(20)
			if err != nil {
				return err
			}
			fmt.Println(r)
			return nil
		}},
		"predict": {"Prediction accuracy", func() error {
			rows, err := p.PredictionAccuracy()
			if err != nil {
				return err
			}
			fmt.Println(experiments.PredictionReport(rows))
			return nil
		}},
		"robustness": {"Fault robustness", func() error {
			r, err := experiments.Robustness(cfg, spec, nil, topo)
			if err != nil {
				return err
			}
			fmt.Println(r)
			return nil
		}},
	}
	order := []string{"fig8", "fig9", "fig10", "stability", "predict", "robustness"}

	if what == "all" {
		for _, k := range order {
			if err := jobs[k].fn(); err != nil {
				return fmt.Errorf("%s: %w", jobs[k].name, err)
			}
		}
		fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
		return nil
	}
	j, ok := jobs[what]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want fig8, fig9, fig10, stability, predict, robustness, quality, simcheck or all)", what)
	}
	if err := j.fn(); err != nil {
		return err
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// Command loadgen drives layoutd with chaos traffic: concurrent clients
// submitting a mix of clean requests, fault-injected collections, tight
// deadlines, and malformed bodies, with retry/backoff/jitter on shed
// responses. It verifies the service's degradation contract — every
// response is either a labeled success (verdict OK/SUSPECT/DEGRADED) or an
// explicit 4xx/5xx with a machine-readable code, and the server records
// zero panics — and writes a latency/outcome summary (p50/p99, shed rate,
// degraded rate) as JSON.
//
// Run against a live server:
//
//	layoutd -addr :8347 &
//	loadgen -addr http://127.0.0.1:8347 -duration 10s -out BENCH_layoutd.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// The traffic programs. Seeds vary per request, so the same text exercises
// both the cold (full collection) and warm (replay) rungs.
const progWebserver = `
program webserver

struct conn {
    c_state     i64
    c_accepts   i64
    c_deadline  i64
    c_flags     i64
    c_rxq       i64
    c_txq       i64
    c_peer      arr 2 8 align 8
    c_stats     arr 6 8 align 8
}

proc serve_request {
    read conn.c_flags param 0
    read conn.c_rxq param 0
    write conn.c_txq param 0
    read conn.c_accepts shared 0
    write conn.c_accepts shared 0
    compute 140
}

proc worker {
    loop 12 {
        call serve_request
    }
}

arena conn 64
thread 0 worker params 8 iters 2
thread 1 worker params 9 iters 2
thread 2 worker params 10 iters 2
thread 3 worker params 11 iters 2
`

const progCounters = `
program counters

struct stats {
    s_lock  i64
    s_reqs  i64
    s_errs  i64
    s_local arr 4 8 align 8
}

proc bump {
    lock stats.s_lock param 0
    write stats.s_reqs shared 0
    write stats.s_errs shared 0
    unlock stats.s_lock param 0
    compute 20
}

proc worker {
    loop 16 {
        call bump
    }
}

arena stats 8
thread 0 worker params 0 iters 2
thread 1 worker params 1 iters 2
thread 2 worker params 2 iters 2
thread 3 worker params 3 iters 2
`

// analyzeReq mirrors server.AnalyzeRequest (kept in sync by the smoke
// test; loadgen stays a standalone client on purpose).
type analyzeReq struct {
	Program    string `json:"program"`
	Machine    string `json:"machine,omitempty"`
	Mode       string `json:"mode,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
	Inject     string `json:"inject,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
}

// analyzeResp is the slice of the response loadgen validates.
type analyzeResp struct {
	Ladder   string `json:"ladder"`
	Degraded bool   `json:"degraded"`
	Quality  struct {
		Verdict string `json:"verdict"`
	} `json:"quality"`
}

// outcome classifies one terminal request (after retries).
type outcome struct {
	class     string // ok-full, ok-replay, ok-static, degraded-*, shed, deadline, bad-request, panic, transport, contract-violation
	latencyMS float64
	retries   int
}

// Report is the JSON summary written to -out.
type Report struct {
	Config struct {
		Addr     string  `json:"addr"`
		Clients  int     `json:"clients"`
		Duration string  `json:"duration"`
		Inject   string  `json:"inject"`
		FaultPct float64 `json:"fault_pct"`
		Seed     int64   `json:"seed"`
	} `json:"config"`
	Requests          int             `json:"requests"`
	Retries           int             `json:"retries"`
	ByClass           map[string]int  `json:"by_class"`
	P50MS             float64         `json:"p50_ms"`
	P99MS             float64         `json:"p99_ms"`
	ShedRate          float64         `json:"shed_rate"`
	DegradedRate      float64         `json:"degraded_rate"`
	ContractViolation int             `json:"contract_violations"`
	ServerStats       json.RawMessage `json:"server_stats"`
	WallSeconds       float64         `json:"wall_seconds"`
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8347", "layoutd base URL")
		clients  = flag.Int("clients", 8, "concurrent clients")
		duration = flag.Duration("duration", 10*time.Second, "traffic duration")
		inject   = flag.String("inject", "loss=0.3,dup=0.05", "fault spec for the faulted slice of traffic")
		faultPct = flag.Float64("fault-pct", 0.4, "fraction of analyze requests carrying the fault spec")
		badPct   = flag.Float64("bad-pct", 0.1, "fraction of requests that are intentionally malformed")
		seed     = flag.Int64("seed", 1, "traffic-shape seed")
		out      = flag.String("out", "", "write the JSON report here (default stdout)")
	)
	flag.Parse()

	client := &http.Client{Timeout: 90 * time.Second}
	start := time.Now()
	deadline := start.Add(*duration)

	var mu sync.Mutex
	var outcomes []outcome

	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(id)*7919))
			for time.Now().Before(deadline) {
				o := oneRequest(client, *addr, rng, *inject, *faultPct, *badPct)
				mu.Lock()
				outcomes = append(outcomes, o)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := buildReport(outcomes, wall)
	rep.Config.Addr = *addr
	rep.Config.Clients = *clients
	rep.Config.Duration = duration.String()
	rep.Config.Inject = *inject
	rep.Config.FaultPct = *faultPct
	rep.Config.Seed = *seed

	// Post-run server-side assertions: health green, zero panics.
	healthy := checkHealth(client, *addr)
	rep.ServerStats = fetchStats(client, *addr)
	panics := statValue(rep.ServerStats, "panics")

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("loadgen: encoding report: %v", err)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatalf("loadgen: %v", err)
	}

	switch {
	case !healthy:
		log.Fatalf("loadgen: FAIL: /healthz not green after the run")
	case panics != 0:
		log.Fatalf("loadgen: FAIL: server recorded %d panics", panics)
	case rep.ContractViolation != 0:
		log.Fatalf("loadgen: FAIL: %d responses violated the degradation contract", rep.ContractViolation)
	case rep.ByClass["transport"] > 0:
		log.Fatalf("loadgen: FAIL: %d requests failed at the transport layer", rep.ByClass["transport"])
	}
	log.Printf("loadgen: PASS: %d requests, p50 %.1fms p99 %.1fms, shed %.1f%%, degraded %.1f%%",
		rep.Requests, rep.P50MS, rep.P99MS, 100*rep.ShedRate, 100*rep.DegradedRate)
}

// oneRequest issues one logical request (with retry/backoff on shed) and
// classifies the terminal answer.
func oneRequest(client *http.Client, addr string, rng *rand.Rand, inject string, faultPct, badPct float64) outcome {
	req := analyzeReq{
		Program: progWebserver,
		Mode:    "auto",
		Seed:    1 + rng.Int63n(3), // small seed pool: mixes cold collections with warm replays
	}
	if rng.Float64() < 0.5 {
		req.Program = progCounters
	}
	if rng.Float64() < faultPct {
		req.Inject = inject
	}
	// Deadline mix: mostly comfortable, some tight enough to force the
	// static rung or an explicit 504.
	switch rng.Intn(10) {
	case 0:
		req.DeadlineMS = 30
	case 1:
		req.DeadlineMS = 250
	default:
		req.DeadlineMS = 8000
	}
	body, _ := json.Marshal(req)
	if rng.Float64() < badPct {
		// Malformed traffic: truncated JSON or an unparseable program. The
		// server must answer 400 with a code, never 500.
		if rng.Intn(2) == 0 {
			body = body[:len(body)/2]
		} else {
			body, _ = json.Marshal(analyzeReq{Program: "program broken\nstruct {"})
		}
	}

	start := time.Now()
	retries := 0
	backoff := 50 * time.Millisecond
	for {
		status, respBody, err := post(client, addr+"/v1/analyze", body)
		if err != nil {
			if retries < 3 {
				retries++
				sleepJitter(rng, &backoff)
				continue
			}
			return outcome{class: "transport", latencyMS: ms(start), retries: retries}
		}
		switch {
		case status == http.StatusOK:
			var ar analyzeResp
			if jerr := json.Unmarshal(respBody, &ar); jerr != nil || ar.Ladder == "" ||
				(ar.Quality.Verdict != "OK" && ar.Quality.Verdict != "SUSPECT" && ar.Quality.Verdict != "DEGRADED") {
				return outcome{class: "contract-violation", latencyMS: ms(start), retries: retries}
			}
			class := "ok-" + ar.Ladder
			if ar.Degraded {
				class = "degraded-" + ar.Ladder
			}
			return outcome{class: class, latencyMS: ms(start), retries: retries}
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			if retries < 3 {
				retries++
				sleepJitter(rng, &backoff)
				continue
			}
			return outcome{class: "shed", latencyMS: ms(start), retries: retries}
		case status == http.StatusGatewayTimeout:
			return outcome{class: "deadline", latencyMS: ms(start), retries: retries}
		case status >= 400 && status < 500:
			return outcome{class: "bad-request", latencyMS: ms(start), retries: retries}
		default:
			// 5xx: the chaos run treats any panic-shaped answer as a failure.
			return outcome{class: "panic", latencyMS: ms(start), retries: retries}
		}
	}
}

func post(client *http.Client, url string, body []byte) (int, []byte, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

func sleepJitter(rng *rand.Rand, backoff *time.Duration) {
	d := *backoff + time.Duration(rng.Int63n(int64(*backoff)))
	time.Sleep(d)
	*backoff *= 2
}

func ms(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

func buildReport(outcomes []outcome, wall time.Duration) *Report {
	rep := &Report{ByClass: make(map[string]int)}
	var lat []float64
	shed, degraded, ok := 0, 0, 0
	for _, o := range outcomes {
		rep.Requests++
		rep.Retries += o.retries
		rep.ByClass[o.class]++
		lat = append(lat, o.latencyMS)
		switch {
		case o.class == "shed":
			shed++
		case len(o.class) >= 8 && o.class[:8] == "degraded":
			degraded++
			ok++
		case len(o.class) >= 2 && o.class[:2] == "ok":
			ok++
		}
		if o.class == "contract-violation" {
			rep.ContractViolation++
		}
	}
	sort.Float64s(lat)
	rep.P50MS = percentile(lat, 0.50)
	rep.P99MS = percentile(lat, 0.99)
	if rep.Requests > 0 {
		rep.ShedRate = float64(shed) / float64(rep.Requests)
	}
	if ok > 0 {
		rep.DegradedRate = float64(degraded) / float64(ok)
	}
	rep.WallSeconds = wall.Seconds()
	return rep
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func checkHealth(client *http.Client, addr string) bool {
	resp, err := client.Get(addr + "/healthz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

func fetchStats(client *http.Client, addr string) json.RawMessage {
	resp, err := client.Get(addr + "/statusz")
	if err != nil {
		return json.RawMessage(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return json.RawMessage(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	return b
}

// statValue digs one counter out of the /statusz blob (shape:
// {"stats": {...counters...}, ...}); -1 when absent.
func statValue(blob json.RawMessage, name string) int64 {
	var v struct {
		Stats map[string]int64 `json:"stats"`
	}
	if err := json.Unmarshal(blob, &v); err != nil || v.Stats == nil {
		return -1
	}
	n, ok := v.Stats[name]
	if !ok {
		return -1
	}
	return n
}

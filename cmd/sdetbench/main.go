// Command sdetbench runs the SDET-like workload (the reproduction of SPEC
// SDM 057.sdet, §5) on a simulated machine under a chosen set of structure
// layouts and reports throughput in scripts/hour, plus the coherence
// simulator's counters. It follows the paper's measurement protocol: N
// measured runs, outliers removed, mean reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"structlayout/internal/layout"
	"structlayout/internal/machine"
	"structlayout/internal/parallel"
	"structlayout/internal/profile"
	"structlayout/internal/stats"
	"structlayout/internal/workload"
)

func main() {
	var (
		machineName = flag.String("machine", "superdome128", "machine: bus4, way16 or superdome128")
		structLabel = flag.String("struct", "", "struct whose layout to replace (A..E); empty = all baseline")
		layoutName  = flag.String("layout", "baseline", "layout for -struct: baseline, hotness or a permutation spec")
		runs        = flag.Int("runs", 10, "measured runs (the paper uses 10)")
		jobs        = flag.Int("j", 0, "max parallel measured runs (default GOMAXPROCS)")
		seed        = flag.Int64("seed", 20070311, "base seed")
		verbose     = flag.Bool("v", false, "print per-run throughput and coherence counters")
	)
	flag.Parse()
	if *jobs > 0 {
		parallel.SetLimit(*jobs)
	}
	if err := run(*machineName, *structLabel, *layoutName, *runs, *seed, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "sdetbench:", err)
		os.Exit(1)
	}
}

func run(machineName, structLabel, layoutName string, runs int, seed int64, verbose bool) error {
	topo, err := machine.ByName(machineName)
	if err != nil {
		return err
	}
	params := workload.DefaultParams()
	suite, err := workload.NewSuite(params)
	if err != nil {
		return err
	}
	lineSize := int(params.Cache.LineSize)
	layouts := suite.BaselineLayouts(lineSize)

	if structLabel != "" {
		ks := suite.Struct(structLabel)
		if ks == nil {
			return fmt.Errorf("unknown struct %q", structLabel)
		}
		lay, err := buildLayout(suite, structLabel, layoutName, lineSize, topo, seed)
		if err != nil {
			return err
		}
		layouts = layouts.WithLayout(structLabel, lay)
		fmt.Printf("struct %s uses layout %q (%d lines)\n", structLabel, lay.Name, lay.NumLines())
	}

	fmt.Printf("running %d×SDET on %s (%d CPUs)...\n", runs, topo.Name, topo.NumCPUs())
	m, err := suite.Measure(topo, layouts, runs, seed)
	if err != nil {
		return err
	}
	if verbose {
		sorted := append([]float64(nil), m.Runs...)
		sort.Float64s(sorted)
		for i, r := range m.Runs {
			fmt.Printf("  run %2d: %.0f scripts/hour\n", i+1, r)
		}
		res, err := suite.RunOnce(topo, layouts, seed+1, nil)
		if err != nil {
			return err
		}
		c := res.Coherence
		fmt.Printf("  coherence (run 1): accesses=%d hits=%d cold=%d repl=%d coh=%d upgrades=%d false-sharing=%d invalidations=%d\n",
			c.Accesses, c.Hits, c.ColdMisses, c.ReplMisses, c.CohMisses, c.Upgrades, c.FalseSharing, c.Invalidations)
		fmt.Printf("  top coherence offenders (run 1):\n%s", indent(res.FalseSharingReport(suite.Prog, 8), "    "))
	}
	fmt.Printf("throughput: %.0f scripts/hour (trimmed mean of %d runs, stddev %.0f)\n",
		m.Mean, len(m.Runs), stats.StdDev(m.Runs))
	return nil
}

// buildLayout resolves the requested layout for one struct.
func buildLayout(suite *workload.Suite, label, name string, lineSize int, topo *machine.Topology, seed int64) (*layout.Layout, error) {
	ks := suite.Struct(label)
	switch name {
	case "baseline":
		return ks.Baseline(lineSize), nil
	case "hotness":
		// Hotness needs a profile; collect a short one on the target.
		pf, _, err := suite.Collect(topo, suite.BaselineLayouts(lineSize), seed)
		if err != nil {
			return nil, err
		}
		counts := profile.ProgramFieldCounts(suite.Prog, pf)
		hot := make(map[int]float64, len(ks.Type.Fields))
		for fi := range ks.Type.Fields {
			hot[fi] = counts[profile.FieldKey{Struct: ks.Type.Name, Field: fi}].Total()
		}
		return layout.SortByHotness(ks.Type, hot, lineSize)
	default:
		return nil, fmt.Errorf("unknown layout %q (want baseline or hotness; use cmd/experiments for auto/best)", name)
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}

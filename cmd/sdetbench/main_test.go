package main

import "testing"

func TestRunBaseline(t *testing.T) {
	if err := run("bus4", "", "baseline", 2, 3, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithHotnessLayout(t *testing.T) {
	if err := run("bus4", "A", "hotness", 2, 3, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("vax", "", "baseline", 1, 1, false); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if err := run("bus4", "Z", "baseline", 1, 1, false); err == nil {
		t.Fatal("unknown struct accepted")
	}
	if err := run("bus4", "A", "mystery", 1, 1, false); err == nil {
		t.Fatal("unknown layout accepted")
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"structlayout/internal/machine"
	"structlayout/internal/workload"
)

func TestConcmapRoundTrip(t *testing.T) {
	// Produce a trace via a short collection, then process it.
	suite, err := workload.NewSuite(workload.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	_, trace, err := suite.Collect(machine.Bus4(), suite.BaselineLayouts(128), 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out := filepath.Join(dir, "cm.txt")
	if err := run(tracePath, workload.CollectSliceCycles, 0, out); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Fatal("empty concurrency map")
	}
	topOut := filepath.Join(dir, "top.txt")
	if err := run(tracePath, workload.CollectSliceCycles, 5, topOut); err != nil {
		t.Fatal(err)
	}
	top, _ := os.ReadFile(topOut)
	if len(top) == 0 || len(top) >= len(full) {
		t.Fatalf("top output wrong: %d vs %d bytes", len(top), len(full))
	}
}

func TestConcmapMissingTrace(t *testing.T) {
	if err := run("/nonexistent/trace.json", 1000, 0, ""); err == nil {
		t.Fatal("missing trace accepted")
	}
}

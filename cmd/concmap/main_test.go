package main

import (
	"os"
	"path/filepath"
	"testing"

	"structlayout/internal/machine"
	"structlayout/internal/workload"
)

func TestConcmapRoundTrip(t *testing.T) {
	// Produce a trace via a short collection, then process it.
	suite, err := workload.NewSuite(workload.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	_, trace, err := suite.Collect(machine.Bus4(), suite.BaselineLayouts(128), 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out := filepath.Join(dir, "cm.txt")
	if err := run(tracePath, workload.CollectSliceCycles, 0, out); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Fatal("empty concurrency map")
	}
	topOut := filepath.Join(dir, "top.txt")
	if err := run(tracePath, workload.CollectSliceCycles, 5, topOut); err != nil {
		t.Fatal(err)
	}
	top, _ := os.ReadFile(topOut)
	if len(top) == 0 || len(top) >= len(full) {
		t.Fatalf("top output wrong: %d vs %d bytes", len(top), len(full))
	}
}

func TestConcmapMissingTrace(t *testing.T) {
	if err := run("/nonexistent/trace.json", 1000, 0, ""); err == nil {
		t.Fatal("missing trace accepted")
	}
}

// TestConcmapSurvivesMalformedTraces: every malformed input must come back
// as an error (the CLI exits 1), never a panic — including semantically
// hostile samples that pass the structural decoder, like block ids far
// beyond the program (which would index out of range in the -top printer).
func TestConcmapSurvivesMalformedTraces(t *testing.T) {
	cases := map[string]string{
		"not-json":     `]]]`,
		"neg-interval": `{"interval_cycles":-5,"num_cpus":2,"cpu":[0],"block":[0],"itc":[100]}`,
		"len-mismatch": `{"interval_cycles":100,"num_cpus":2,"cpu":[0,1],"block":[0],"itc":[100]}`,
		"all-junk-samples": `{"interval_cycles":100,"num_cpus":2,` +
			`"cpu":[0,1],"block":[1000000,2000000],"itc":[100,200]}`,
	}
	dir := t.TempDir()
	for name, body := range cases {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run(path, 1000, 5, filepath.Join(dir, name+".out")); err == nil {
			t.Errorf("%s: malformed trace accepted", name)
		}
	}
}

// Command concmap is the standalone concurrency-map generator — the
// reproduction of the external script in the paper's pipeline (§4.3) that
// processes Caliper's output files into the Concurrency Map.
//
// It reads a sample trace (produced by `layouttool -dump`), buckets the
// samples into fixed time slices, computes CodeConcurrency for every pair
// of source lines, and writes the map as text ("fileA:lineA fileB:lineB
// cc"). With -top it prints only the highest-concurrency pairs, which is
// what a programmer scans for false-sharing suspects.
//
// Malformed traces never crash the tool: structurally broken files are
// rejected with exit status 1, and semantically damaged samples (impossible
// CPU or block ids, absurd timestamps, duplicates) are dropped with a
// data-quality report on stderr before the map is computed.
package main

import (
	"flag"
	"fmt"
	"os"

	"structlayout/internal/concurrency"
	"structlayout/internal/diag"
	"structlayout/internal/sampling"
	"structlayout/internal/workload"
)

func main() {
	var (
		traceIn = flag.String("trace", "", "sample trace JSON (required; see layouttool -dump)")
		slice   = flag.Int64("slice", workload.CollectSliceCycles, "time-slice length in cycles")
		top     = flag.Int("top", 0, "print only the top-N pairs instead of the full map")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if *traceIn == "" {
		fmt.Fprintln(os.Stderr, "concmap: -trace is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*traceIn, *slice, *top, *out); err != nil {
		fmt.Fprintln(os.Stderr, "concmap:", err)
		os.Exit(1)
	}
}

func run(traceIn string, slice int64, top int, out string) error {
	suite, err := workload.NewSuite(workload.DefaultParams())
	if err != nil {
		return err
	}
	f, err := os.Open(traceIn)
	if err != nil {
		return err
	}
	trace, err := sampling.ReadJSON(f)
	f.Close()
	if err != nil {
		return err
	}

	// Drop samples that would poison the map (or panic the line lookup
	// below): CPU/block ids outside the program, absurd timestamps, dups.
	log := diag.NewLog()
	trace = sampling.Sanitize(trace, suite.Prog.NumBlocks(), log)
	if log.Len() > 0 {
		fmt.Fprintf(os.Stderr, "concmap: trace quality:\n%s", log)
	}
	if len(trace.Samples) == 0 {
		return fmt.Errorf("no usable samples remain after sanitization")
	}

	cm, err := concurrency.Compute(trace, concurrency.Options{SliceCycles: slice})
	if err != nil {
		return err
	}

	w := os.Stdout
	if out != "" {
		w, err = os.Create(out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	if top > 0 {
		fmt.Fprintf(w, "# top %d concurrent source-line pairs (of %d)\n", top, len(cm.CC))
		for _, pair := range cm.TopPairs(top) {
			fmt.Fprintf(w, "%s %s %.6g\n",
				suite.Prog.Block(pair.A).Line, suite.Prog.Block(pair.B).Line, cm.CC[pair])
		}
		return nil
	}
	return cm.WriteText(w, suite.Prog)
}

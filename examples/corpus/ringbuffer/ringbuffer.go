// Package ringbuffer is a single-producer single-consumer ring with the
// classic layout bug: the producer cursor, the consumer cursor and the
// storage all start on one coherence line of the one shared instance,
// so every push ping-pongs the line with every pop.
package ringbuffer

import "sync/atomic"

// Ring keeps head (producer-owned) and tail (consumer-owned) adjacent.
type Ring struct {
	head int64
	tail int64
	mask int64
	buf  [256]int64
}

var ring = Ring{mask: 255}

// Start launches the producer/consumer pair.
func Start() {
	go produce()
	go consume()
}

func produce() {
	for i := int64(0); i < 1<<16; i++ {
		h := atomic.LoadInt64(&ring.head)
		if h-atomic.LoadInt64(&ring.tail) < int64(len(ring.buf)) {
			ring.buf[h&ring.mask] = i
			atomic.AddInt64(&ring.head, 1)
		}
	}
}

func consume() {
	for i := int64(0); i < 1<<16; i++ {
		t := atomic.LoadInt64(&ring.tail)
		if t < atomic.LoadInt64(&ring.head) {
			_ = ring.buf[t&ring.mask]
			atomic.AddInt64(&ring.tail, 1)
		}
	}
}

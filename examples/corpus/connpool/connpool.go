// Package connpool is a connection pool whose wait counter is bumped
// with an unguarded atomic on the same line as the lock word and the
// locked free/inuse state. Two workers share the primary pool; a third
// brings its own, which splits the lock across instances and drags the
// whole group into the per-thread-lock check.
package connpool

import (
	"sync"
	"sync/atomic"
)

// Pool packs the lock, the unguarded wait counter and the guarded state.
type Pool struct {
	mu    sync.Mutex
	waits int64
	free  int64
	inuse int64
}

var primary = Pool{free: 64}
var scratch = Pool{free: 8}

// Start launches two workers on the primary pool and one on scratch.
func Start() {
	go borrow(&primary)
	go borrow(&primary)
	go borrow(&scratch)
}

func borrow(p *Pool) {
	for n := 0; n < 2048; n++ {
		atomic.AddInt64(&p.waits, 1)
		p.mu.Lock()
		if p.free > 0 {
			p.free--
			p.inuse++
		}
		p.mu.Unlock()
	}
}

// Package readmostly shares an immutable limits table across the worker
// pool: concurrent reads of one instance are benign, every counter is
// frame-local, and the linter must report nothing.
package readmostly

// Limits is built once and never written after the workers start.
type Limits struct {
	rate  int64
	burst int64
	depth int64
}

var limits = Limits{rate: 1000, burst: 64, depth: 8}

// Start launches the policing pool.
func Start() {
	for i := 0; i < 4; i++ {
		go police(int64(i))
	}
}

func police(seed int64) {
	var allowed, denied int64
	for n := int64(0); n < 8192; n++ {
		if (n^seed)&limits.burst != 0 && n < limits.rate*limits.depth {
			allowed++
		} else {
			denied++
		}
	}
	sink(allowed, denied)
}

func sink(a, d int64) { _ = a + d }

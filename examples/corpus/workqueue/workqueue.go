// Package workqueue is a mutex-guarded queue done right: the lock word
// is padded away from the queue state, every access to the state holds
// the (one, shared) lock, and the workers keep their own tallies in
// frame-local state. The linter must report nothing here.
package workqueue

import "sync"

// Queue pads the lock onto its own coherence line.
type Queue struct {
	mu   sync.Mutex
	_    [120]byte
	jobs []int64
	done int64
}

var queue = Queue{jobs: make([]int64, 0, 1024)}

// Start launches the drain pool.
func Start() {
	for i := 0; i < 4; i++ {
		go drain()
	}
}

func drain() {
	var got int64
	for n := 0; n < 1024; n++ {
		queue.mu.Lock()
		if len(queue.jobs) > 0 {
			queue.jobs = queue.jobs[:len(queue.jobs)-1]
			queue.done++
			got++
		}
		queue.mu.Unlock()
	}
	sink(got)
}

func sink(v int64) { _ = v }

// Package gaugeset guards a process-wide gauge with per-worker meters:
// each worker dutifully locks its own Meter before touching the shared
// Gauge, so the locks serialize nothing — the textbook
// per-thread-lock-shared-data bug.
package gaugeset

import "sync"

// Gauge is the shared metric.
type Gauge struct {
	val int64
	max int64
}

// Meter is the per-worker "guard".
type Meter struct {
	mu sync.Mutex
}

var gauge Gauge
var meterA, meterB Meter

// Start launches one worker per meter.
func Start() {
	go bump(&meterA)
	go bump(&meterB)
}

func bump(m *Meter) {
	for n := int64(0); n < 4096; n++ {
		m.mu.Lock()
		gauge.val++
		if gauge.val > gauge.max {
			gauge.max = gauge.val
		}
		m.mu.Unlock()
	}
}

// Package spscpad is the padded twin of examples/corpus/ringbuffer: a
// full coherence line between the producer cursor, the consumer cursor
// and the storage. The write sharing is still there — the linter must
// see it and then prove the layout never co-locates it.
package spscpad

import "sync/atomic"

// Ring gives each cursor its own line.
type Ring struct {
	head int64
	_    [120]byte
	tail int64
	_    [120]byte
	mask int64
	buf  [256]int64
}

var ring = Ring{mask: 255}

// Start launches the producer/consumer pair.
func Start() {
	go produce()
	go consume()
}

func produce() {
	for i := int64(0); i < 1<<16; i++ {
		h := atomic.LoadInt64(&ring.head)
		if h-atomic.LoadInt64(&ring.tail) < int64(len(ring.buf)) {
			ring.buf[h&ring.mask] = i
			atomic.AddInt64(&ring.head, 1)
		}
	}
}

func consume() {
	for i := int64(0); i < 1<<16; i++ {
		t := atomic.LoadInt64(&ring.tail)
		if t < atomic.LoadInt64(&ring.head) {
			_ = ring.buf[t&ring.mask]
			atomic.AddInt64(&ring.tail, 1)
		}
	}
}

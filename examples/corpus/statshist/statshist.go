// Package statshist is a latency histogram whose header words (count,
// sum) are bumped by every observer on every sample: the buckets spread
// the traffic, the header concentrates it back onto one line.
package statshist

import "sync/atomic"

// Hist packs the hot header next to the bucket array.
type Hist struct {
	count   int64
	sum     int64
	buckets [16]int64
}

var lat Hist

// Start launches the observer pool.
func Start() {
	for i := 0; i < 3; i++ {
		go observe(int64(i))
	}
}

func observe(seed int64) {
	for n := int64(0); n < 8192; n++ {
		v := (n ^ seed) & 1023
		atomic.AddInt64(&lat.count, 1)
		atomic.AddInt64(&lat.sum, v)
		atomic.AddInt64(&lat.buckets[v>>6], 1)
	}
}

// Package shardedcounter fans one logical counter out to per-worker
// slots to avoid contention on a single word — and then defeats the
// point by declaring the slots adjacent in one struct, so all four land
// on one coherence line of the shared instance.
package shardedcounter

import "sync/atomic"

// Counters holds one slot per worker.
type Counters struct {
	c0 int64
	c1 int64
	c2 int64
	c3 int64
}

var counters Counters

// Start launches one worker per slot.
func Start() {
	go worker0()
	go worker1()
	go worker2()
	go worker3()
}

func worker0() {
	for n := 0; n < 1<<16; n++ {
		atomic.AddInt64(&counters.c0, 1)
	}
}

func worker1() {
	for n := 0; n < 1<<16; n++ {
		atomic.AddInt64(&counters.c1, 1)
	}
}

func worker2() {
	for n := 0; n < 1<<16; n++ {
		atomic.AddInt64(&counters.c2, 1)
	}
}

func worker3() {
	for n := 0; n < 1<<16; n++ {
		atomic.AddInt64(&counters.c3, 1)
	}
}

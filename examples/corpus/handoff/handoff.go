// Package handoff transfers exclusive ownership of a buffer through an
// unbuffered channel: the filler initializes it, signals, and never
// touches it again; the owner then mutates every field freely. Without
// the happens-before edge the two writers look like certain false
// sharing on adjacent fields; with it, every access pair is ordered
// and the package lints clean.
package handoff

// Buffer is written by the filler first and owned by the drainer after
// the handoff.
type Buffer struct {
	data int64
	seen int64
}

var buf Buffer
var pass = make(chan struct{})

// Run starts the filler and the new owner.
func Run() {
	go fill()
	go own()
}

func fill() {
	buf.data = 7
	pass <- struct{}{}
}

func own() {
	<-pass
	buf.seen = buf.data
	buf.data = 0
}

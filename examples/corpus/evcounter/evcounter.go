// Package evcounter spawns the same method on the same receiver twice:
// both goroutines bump the one Counter instance through the bound
// receiver, so its adjacent fields write-share one line. Exercises
// method-value spawns and receiver instance binding.
package evcounter

import "sync/atomic"

// Counter keeps both hot words adjacent.
type Counter struct {
	events int64
	drops  int64
}

func (c *Counter) observe() {
	for n := 0; n < 4096; n++ {
		atomic.AddInt64(&c.events, 1)
		if n&127 == 0 {
			atomic.AddInt64(&c.drops, 1)
		}
	}
}

var events Counter

// Start spawns the same bound method twice.
func Start() {
	go events.observe()
	go events.observe()
}

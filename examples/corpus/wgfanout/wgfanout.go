// Package wgfanout fans two scan workers out over a WaitGroup and
// aggregates after Wait. Each worker owns its shard, but the
// aggregation writes sum right next to the worker-written hits — under
// the flat all-threads-overlap model that is a certain false-sharing
// finding. The Add/Done/Wait discipline proves the joins, which order
// the aggregation after both workers, so the package lints clean.
package wgfanout

import "sync"

// Shard keeps a worker counter and its post-join aggregate adjacent.
type Shard struct {
	hits int64
	sum  int64
}

var left Shard
var right Shard
var wg sync.WaitGroup

// Run launches both scans and aggregates once they are done.
func Run() {
	wg.Add(2)
	go scanLeft()
	go scanRight()
	wg.Wait()
	left.sum = left.hits * 2
	right.sum = right.hits * 2
}

func scanLeft() {
	defer wg.Done()
	for i := 0; i < 512; i++ {
		left.hits++
	}
}

func scanRight() {
	defer wg.Done()
	for i := 0; i < 512; i++ {
		right.hits++
	}
}

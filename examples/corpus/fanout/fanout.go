// Package fanout reaches its shared state through a three-deep call
// chain with a branch in the middle: the summary-based analysis must
// propagate threads and frequencies through settle → record → post/void
// without re-walking the callees at every call site.
package fanout

import "sync/atomic"

// Ledger keeps both hot totals adjacent.
type Ledger struct {
	posted int64
	voided int64
}

var ledger Ledger

// Start launches two settlement workers.
func Start() {
	go settle(1)
	go settle(2)
}

func settle(seed int64) {
	for n := int64(0); n < 1024; n++ {
		record(n * seed)
	}
}

func record(v int64) {
	if v&1 == 0 {
		post()
	} else {
		void()
	}
}

func post() { atomic.AddInt64(&ledger.posted, 1) }

func void() { atomic.AddInt64(&ledger.voided, 1) }

// Package seqlock publishes a two-word snapshot under a sequence
// counter. Readers spin on seq while the writer bumps it around every
// update — and seq shares its line with the data it versions, so the
// readers' spins and the writer's stores collide on one line.
package seqlock

import "sync/atomic"

// Snapshot keeps the sequence word adjacent to the payload.
type Snapshot struct {
	seq int64
	x   int64
	y   int64
}

var snap Snapshot

// Start launches one publisher and two observers.
func Start() {
	go publish()
	go observe()
	go observe()
}

func publish() {
	for n := int64(0); n < 1<<16; n++ {
		atomic.AddInt64(&snap.seq, 1)
		snap.x = n
		snap.y = -n
		atomic.AddInt64(&snap.seq, 1)
	}
}

func observe() {
	for n := 0; n < 1<<16; n++ {
		s1 := atomic.LoadInt64(&snap.seq)
		x := snap.x
		y := snap.y
		s2 := atomic.LoadInt64(&snap.seq)
		if s1 == s2 && s1&1 == 0 {
			sink(x, y)
		}
	}
}

func sink(x, y int64) { _ = x + y }

// Package mutexcache is an RWMutex-guarded lookup table whose hot
// hit/miss counters are bumped with unguarded atomics right next to the
// lock word: the read path that was supposed to scale serializes on the
// counter line instead.
package mutexcache

import (
	"sync"
	"sync/atomic"
)

// Cache packs the lock, the hot counters and the table header together.
type Cache struct {
	mu     sync.RWMutex
	hits   int64
	misses int64
	data   map[int64]int64
}

var cache = Cache{data: make(map[int64]int64)}

// Start launches the reader pool.
func Start() {
	for i := 0; i < 4; i++ {
		go lookup(int64(i))
	}
}

func lookup(seed int64) {
	for n := int64(0); n < 4096; n++ {
		k := (n*2654435761 + seed) & 1023
		cache.mu.RLock()
		_, ok := cache.data[k]
		cache.mu.RUnlock()
		if ok {
			atomic.AddInt64(&cache.hits, 1)
		} else {
			atomic.AddInt64(&cache.misses, 1)
		}
	}
}

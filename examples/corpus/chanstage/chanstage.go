// Package chanstage is a two-stage pipeline over an unbuffered
// channel: the parse stage fills the record, hands it over, and the
// digest stage writes its result into the adjacent field. Flat thread
// modeling flags the two writes as certain false sharing; the
// rendezvous edge on the unbuffered channel orders parse before
// digest, so the package lints clean.
package chanstage

// Record carries the parse output and its digest side by side.
type Record struct {
	payload int64
	digest  int64
}

var rec Record
var handed = make(chan struct{})

// Run wires the two stages together.
func Run() {
	go parse()
	go digest()
}

func parse() {
	rec.payload = 40
	handed <- struct{}{}
}

func digest() {
	<-handed
	rec.digest = rec.payload + 2
}

// Kernelstruct drives the paper's headline case end to end: struct A — the
// >100-field, false-sharing-heavy kernel record — through collection, the
// layout tool, and evaluation on the simulated 128-way Superdome, printing
// one row of Figure 8/10.
//
//	go run ./examples/kernelstruct        (about a minute)
package main

import (
	"fmt"
	"log"
	"time"

	"structlayout/internal/experiments"
	"structlayout/internal/machine"
	"structlayout/internal/workload"
)

func main() {
	start := time.Now()
	cfg := experiments.DefaultConfig()
	cfg.Runs = 3 // quick look; cmd/experiments uses the full 10-run protocol

	fmt.Printf("collecting profile + concurrency on %s...\n", cfg.CollectTopo.Name)
	p, err := experiments.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}

	st := p.Suite.Struct("A")
	fmt.Printf("struct A (%s): %d fields, baseline %d cache lines\n\n",
		st.Type.Name, st.Type.NumFields(), p.Baselines["A"].NumLines())

	fmt.Println("== advisory report (excerpt) ==")
	rep := p.Reports["A"]
	if len(rep) > 2600 {
		rep = rep[:2600] + "\n[... truncated; run cmd/layouttool -struct A for the full report]\n"
	}
	fmt.Println(rep)

	topo := machine.Superdome128()
	fmt.Printf("== evaluating on %s (%d CPUs, %d runs each) ==\n", topo.Name, topo.NumCPUs(), cfg.Runs)
	base, err := p.Suite.Measure(topo, p.Baselines, cfg.Runs, cfg.BaseSeed)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range []struct {
		name string
		ls   workload.Layouts
	}{
		{"flg-auto (§5.1)", p.Auto},
		{"sort-by-hotness (§5.1)", p.Hotness},
		{"incremental (§5.2)", p.Best},
	} {
		m, err := p.Suite.Measure(topo, p.Baselines.WithLayout("A", v.ls["A"]), cfg.Runs, cfg.BaseSeed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s %+7.2f%% vs baseline (%d lines)\n", v.name, m.SpeedupOver(base), v.ls["A"].NumLines())
	}
	fmt.Printf("\npaper's Figure 8/10 for struct A: auto -5.29%%, hotness worse than -50%%, incremental +2.65%%\n")
	fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Millisecond))
}

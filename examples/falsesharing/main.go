// Falsesharing demonstrates the effect the paper's CycleLoss term models:
// per-CPU counters packed into one 128-byte coherence line ping-pong
// between caches, and the cost explodes with machine size — the Superdome's
// inter-crossbar transfers run around 1000 cycles, while on a small bus
// machine a remote cache access is barely worse than a memory miss (§1,
// §5). Separating the counters into one line each removes the coherence
// traffic entirely.
//
//	go run ./examples/falsesharing
package main

import (
	"fmt"
	"log"

	"structlayout/internal/coherence"
	"structlayout/internal/exec"
	"structlayout/internal/ir"
	"structlayout/internal/layout"
	"structlayout/internal/machine"
)

const (
	numCounters = 8
	iters       = 5000
)

func buildProgram() (*ir.Program, *ir.StructType) {
	prog := ir.NewProgram("falsesharing")
	fields := make([]ir.Field, numCounters)
	for i := range fields {
		fields[i] = ir.I64(fmt.Sprintf("ctr%d", i))
	}
	st := ir.NewStruct("counters", fields...)
	prog.AddStruct(st)
	// One worker procedure per counter slot; the thread on CPU c runs the
	// worker for slot c mod numCounters, so every counter has writers.
	for i := 0; i < numCounters; i++ {
		w := prog.NewProc(fmt.Sprintf("worker%d", i))
		fi := i
		w.Loop(iters, func(b *ir.Builder) {
			b.ReadI(st, fi, ir.Shared(0))
			b.WriteI(st, fi, ir.Shared(0))
			b.Compute(50)
		})
		w.Done()
	}
	return prog.MustFinalize(), st
}

func run(topo *machine.Topology, lay *layout.Layout, prog *ir.Program) *exec.Result {
	r, err := exec.NewRunner(prog, exec.Config{Topo: topo, Cache: coherence.DefaultItanium(), Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	if err := r.DefineArena(lay, 1); err != nil {
		log.Fatal(err)
	}
	n := topo.NumCPUs()
	if n > numCounters {
		n = numCounters // one writer per counter is enough to ping-pong
	}
	for cpu := 0; cpu < n; cpu++ {
		if err := r.AddThread(cpu*topo.NumCPUs()/n, fmt.Sprintf("worker%d", cpu%numCounters), nil, 1); err != nil {
			log.Fatal(err)
		}
	}
	res, err := r.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	prog, st := buildProgram()

	packed, err := layout.Original(st, 128) // all 8 counters in one line
	if err != nil {
		log.Fatal(err)
	}
	clusters := make([][]int, numCounters)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	spread, err := layout.PackClusters(st, "one-counter-per-line", clusters, 128,
		layout.PackOptions{OneClusterPerLine: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d counters, %d writers, %d increments each\n\n", numCounters, numCounters, iters)
	fmt.Printf("%-14s %-22s %12s %14s %12s\n", "machine", "layout", "cycles", "false-sharing", "slowdown")
	for _, topo := range []*machine.Topology{machine.Bus4(), machine.Superdome128()} {
		base := run(topo, spread, prog)
		bad := run(topo, packed, prog)
		fmt.Printf("%-14s %-22s %12d %14d %11s\n", topo.Name, spread.Name, base.Cycles, base.Coherence.FalseSharing, "1.00x")
		fmt.Printf("%-14s %-22s %12d %14d %11.2fx\n", topo.Name, "packed (baseline)", bad.Cycles, bad.Coherence.FalseSharing,
			float64(bad.Cycles)/float64(base.Cycles))
	}
	fmt.Println("\nThe packed layout's penalty grows with the machine: that asymmetry")
	fmt.Println("is exactly why the paper's layouts are re-evaluated on both a 4-way")
	fmt.Println("bus box (Figure 9) and a 128-way Superdome (Figure 8).")
}

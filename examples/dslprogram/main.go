// Dslprogram runs the full tool chain over a program written in the irtext
// DSL (webserver.slp): parse, collect profile and concurrency data, build
// the FLG, suggest a layout, and measure the before/after throughput on a
// simulated machine. This is the path a user outside this repository takes
// — the DSL plays the role of the C front end in the paper's pipeline.
//
//	go run ./examples/dslprogram
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"structlayout/internal/core"
	"structlayout/internal/driver"
	"structlayout/internal/irtext"
	"structlayout/internal/layout"
	"structlayout/internal/machine"
)

func main() {
	src, err := os.ReadFile(filepath.Join("examples", "dslprogram", "webserver.slp"))
	if err != nil {
		// Allow running from the example directory too.
		src, err = os.ReadFile("webserver.slp")
	}
	if err != nil {
		log.Fatal(err)
	}
	file, err := irtext.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}
	topo := machine.Bus4()
	cfg := driver.Config{Topo: topo, Seed: 7}
	fmt.Printf("program %s on %s\n\n", file.Prog.Name, topo.Name)

	// Collection phase.
	res, err := driver.Collect(file, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collection: %d cycles, %d samples, %d false-sharing events\n",
		res.Cycles, len(res.Trace.Samples), res.Coherence.FalseSharing)
	fmt.Printf("\ndetector view (ground truth):\n%s\n", res.FalseSharingReport(file.Prog, 4))

	// The tool.
	analysis, err := core.NewAnalysis(file.Prog, res.Profile, res.Trace, core.Options{
		LineSize:    cfg.LineSize(),
		SliceCycles: res.Cycles/64 + 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := file.Prog.Struct("conn")
	orig, err := layout.Original(st, cfg.LineSize())
	if err != nil {
		log.Fatal(err)
	}
	sugg, err := analysis.Suggest("conn", orig)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sugg.Report.String())

	// Evaluation: same program, same seeds, two layouts.
	measure := func(lay *layout.Layout) int64 {
		var worst int64
		for seed := int64(1); seed <= 3; seed++ {
			r, err := driver.Run(file, driver.Config{Topo: topo, Seed: seed},
				map[string]*layout.Layout{"conn": lay})
			if err != nil {
				log.Fatal(err)
			}
			if r.Cycles > worst {
				worst = r.Cycles
			}
		}
		return worst
	}
	before := measure(orig)
	after := measure(sugg.Auto)
	fmt.Printf("== evaluation on %s (worst of 3 runs) ==\n", topo.Name)
	fmt.Printf("  declaration order: %d cycles\n", before)
	fmt.Printf("  suggested layout:  %d cycles (%+.2f%%)\n",
		after, (float64(before)/float64(after)-1)*100)
}

// Package falseshare is the known-bad golden input for `layouttool
// -go-lint`: hot per-thread counters declared adjacent to each other and
// to the mutex word, all on one coherence line of a single shared
// instance. The static pass must flag certain write-sharing here.
package falseshare

import (
	"sync"
	"sync/atomic"
)

// Metrics packs the admission lock and all hot counters together: every
// field below lands on the first 128-byte line of the one global
// instance, so concurrent workers ping-pong the line.
type Metrics struct {
	mu    sync.Mutex
	limit int64
	inuse int64
	reqs  int64
	errs  int64
}

var global Metrics

// Serve starts the worker pool. Each `go` statement in the loop is a
// modeled thread.
func Serve() {
	for i := 0; i < 4; i++ {
		go worker(i)
	}
}

func worker(id int) {
	for n := 0; n < 1024; n++ {
		handle(n + id)
	}
}

func handle(n int) {
	atomic.AddInt64(&global.reqs, 1)
	if n%64 == 0 {
		atomic.AddInt64(&global.errs, 1)
	}
	if n%256 == 0 {
		reserve()
	}
}

// reserve takes the admission lock; inuse/limit are lock-serialized,
// but they still share a line with the lock word and the atomics.
func reserve() {
	global.mu.Lock()
	defer global.mu.Unlock()
	if global.inuse < global.limit {
		global.inuse++
	}
}

// Package clean is the known-good golden input for `layouttool
// -go-lint`: workers share only an immutable routing table (read-only
// sharing is benign) and keep their hot counters in goroutine-local
// state. The static pass must report nothing here.
package clean

// RouteTable is built once before the workers start and never written
// afterwards; concurrent reads of one instance are fine.
type RouteTable struct {
	shards  int64
	mask    int64
	seed    int64
	version int64
}

var routes = RouteTable{shards: 16, mask: 15, seed: 42, version: 1}

// WorkerStats is goroutine-local: each worker owns its instance, so no
// two threads ever touch the same memory.
type WorkerStats struct {
	handled int64
	dropped int64
}

// Serve starts the worker pool; each worker allocates its own stats.
func Serve() {
	for i := 0; i < 4; i++ {
		go worker()
	}
}

func worker() {
	var stats WorkerStats
	for n := int64(0); n < 1024; n++ {
		shard := (n ^ routes.seed) & routes.mask
		if shard < routes.shards {
			stats.handled++
		} else {
			stats.dropped++
		}
	}
	sink(stats.handled, stats.dropped)
}

// sink keeps the counters observably live.
func sink(handled, dropped int64) {
	_ = handled + dropped
}

// Affinity reproduces the paper's running example: the code fragment of
// Figure 4 and the affinity graph of Figure 5.
//
//	/* entry PBO count: n */
//	S.f1 = ;  S.f2 = ;
//	for (int i = 0; i < N; i++) {
//	    S.f3 = ;  = S.f3 + S.f1;  = S.f3;
//	}
//
// Expected (Figure 5): edge f1–f2 with weight n, edge f1–f3 with weight N
// (per entry), hotness h(f1) = N + n, and the read/write annotations
// f1: R=N W=n, f2: R=0 W=n, f3: R=2N W=N.
//
//	go run ./examples/affinity
package main

import (
	"fmt"
	"log"

	"structlayout/internal/affinity"
	"structlayout/internal/ir"
	"structlayout/internal/profile"
)

func main() {
	const (
		n = 10  // entry PBO count
		N = 100 // loop execution count
	)
	prog := ir.NewProgram("figure4")
	s := ir.NewStruct("S", ir.I64("f1"), ir.I64("f2"), ir.I64("f3"))
	prog.AddStruct(s)

	snippet := prog.NewProc("snippet")
	snippet.Write(s, "f1", ir.Shared(0))
	snippet.Write(s, "f2", ir.Shared(0))
	snippet.Loop(N, func(b *ir.Builder) {
		b.Write(s, "f3", ir.Shared(0))
		b.Read(s, "f3", ir.Shared(0))
		b.Read(s, "f1", ir.Shared(0))
		b.Read(s, "f3", ir.Shared(0))
	})
	snippet.Done()

	caller := prog.NewProc("main")
	caller.Loop(n, func(b *ir.Builder) { b.Call("snippet") })
	caller.Done()
	prog.MustFinalize()

	pf, err := profile.StaticEstimate(prog, []string{"main"})
	if err != nil {
		log.Fatal(err)
	}
	g := affinity.Build(prog, pf, s, affinity.Options{})

	fmt.Printf("Figure 4 parameters: n=%d, N=%d\n\n", n, N)
	fmt.Print(g.Dump())

	fmt.Println("\nFigure 5 cross-check:")
	check := func(what string, got, want float64) {
		status := "ok"
		if got != want {
			status = "MISMATCH"
		}
		fmt.Printf("  %-28s got %8.6g  want %8.6g  [%s]\n", what, got, want, status)
	}
	check("w(f1,f2) = n", g.Weight(0, 1), n)
	check("w(f1,f3) = n*N", g.Weight(0, 2), n*N)
	check("w(f2,f3) = 0", g.Weight(1, 2), 0)
	check("hot(f1) = n*(N+1)", g.Hotness[0], n*(N+1))
	check("hot(f3) = 3nN", g.Hotness[2], 3*n*N)
	check("R(f3) = 2nN", g.Reads[2], 2*n*N)
	check("W(f3) = nN", g.Writes[2], n*N)
	check("R(f2) = 0", g.Reads[1], 0)
	check("W(f2) = n", g.Writes[1], n)
}

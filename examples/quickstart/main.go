// Quickstart: define a record type and a small multithreaded workload,
// collect a profile and PMU-style samples on a simulated 4-way machine, and
// ask the layout tool for a false-sharing-aware field order.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"structlayout/internal/coherence"
	"structlayout/internal/core"
	"structlayout/internal/exec"
	"structlayout/internal/ir"
	"structlayout/internal/layout"
	"structlayout/internal/machine"
	"structlayout/internal/sampling"
)

func main() {
	// A connection object: a pair of fields the reader thread walks
	// together, a statistics counter the writer threads hammer, and some
	// cold configuration data.
	prog := ir.NewProgram("quickstart")
	conn := ir.NewStruct("conn",
		ir.I64("c_state"),    // walked by the poller
		ir.I64("c_events"),   // walked by the poller
		ir.I64("c_bytes_rx"), // bumped by every worker on the shared conn
		ir.Ptr("c_handler"),
		ir.I64("c_timeout"),
		ir.Arr("c_name", 4, 8, 8),
	)
	prog.AddStruct(conn)

	// The poller walks all connections reading state+events (affinity).
	poller := prog.NewProc("poller")
	poller.Loop(256, func(b *ir.Builder) {
		b.Read(conn, "c_state", ir.LoopVar())
		b.Read(conn, "c_events", ir.LoopVar())
		b.Compute(25)
	})
	poller.Done()

	// Workers account received bytes on one hot shared connection.
	worker := prog.NewProc("worker")
	worker.Loop(256, func(b *ir.Builder) {
		b.Write(conn, "c_bytes_rx", ir.Shared(0))
		b.Compute(60)
	})
	worker.Done()

	mainProc := prog.NewProc("main")
	mainProc.Call("poller")
	mainProc.Call("worker")
	mainProc.Done()
	prog.MustFinalize()

	// Collection run: 4 CPUs, everything instrumented.
	runner, err := exec.NewRunner(prog, exec.Config{
		Topo:     machine.Bus4(),
		Cache:    coherence.DefaultItanium(),
		Seed:     1,
		Sampling: &sampling.Config{IntervalCycles: 250, DriftMaxCycles: 2, Seed: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	original, err := layout.Original(conn, 128)
	if err != nil {
		log.Fatal(err)
	}
	if err := runner.DefineArena(original, 512); err != nil {
		log.Fatal(err)
	}
	for cpu := 0; cpu < 4; cpu++ {
		if err := runner.AddThread(cpu, "main", nil, 4); err != nil {
			log.Fatal(err)
		}
	}
	res, err := runner.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collection: %d cycles, %d samples, %d false-sharing events\n\n",
		res.Cycles, len(res.Trace.Samples), res.Coherence.FalseSharing)

	// The tool: affinity + concurrency -> FLG -> clustering -> layout.
	analysis, err := core.NewAnalysis(prog, res.Profile, res.Trace, core.Options{
		LineSize:    128,
		SliceCycles: 2500,
	})
	if err != nil {
		log.Fatal(err)
	}
	suggestion, err := analysis.Suggest("conn", original)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(suggestion.Report.String())
}

module structlayout

go 1.22

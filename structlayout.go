// Package structlayout is a reproduction of "Structure Layout Optimization
// for Multithreaded Programs" (Raman, Hundt, Mannarswamy — CGO 2007): a
// semi-automatic tool that lays out the fields of a record type to improve
// spatial locality and reduce false sharing simultaneously, together with
// every substrate the paper's pipeline needs — a compiler IR with affinity
// analysis, a synchronized-sampling PMU model, the CodeConcurrency metric,
// a MESI cache-coherence simulator with the paper's machine topologies, and
// the SDET-like evaluation workload.
//
// This file re-exports the public surface from the internal packages so
// downstream users have a single import:
//
//	import "structlayout"
//
//	prog := structlayout.NewProgram("app")
//	s := structlayout.NewStruct("conn", structlayout.I64("a"), structlayout.I64("b"))
//	...
//	analysis, _ := structlayout.NewAnalysis(prog, prof, trace, structlayout.ToolOptions{})
//	suggestion, _ := analysis.Suggest("conn", nil)
//
// See examples/ for complete programs and DESIGN.md for the system map.
package structlayout

import (
	"structlayout/internal/concurrency"
	"structlayout/internal/core"
	"structlayout/internal/exec"
	"structlayout/internal/ir"
	"structlayout/internal/layout"
	"structlayout/internal/machine"
	"structlayout/internal/profile"
	"structlayout/internal/sampling"
)

// IR surface: programs, record types, the builder DSL.
type (
	// Program is a whole multithreaded program under analysis.
	Program = ir.Program
	// StructType is a record type whose field order the tool may permute.
	StructType = ir.StructType
	// Field is one member of a record type.
	Field = ir.Field
	// Builder constructs procedure bodies fluently.
	Builder = ir.Builder
	// InstExpr selects the struct instance an access touches.
	InstExpr = ir.InstExpr
)

// NewProgram returns an empty program.
func NewProgram(name string) *Program { return ir.NewProgram(name) }

// NewStruct declares a record type.
func NewStruct(name string, fields ...Field) *StructType { return ir.NewStruct(name, fields...) }

// Field constructors (C scalar widths).
var (
	I8  = ir.I8
	I16 = ir.I16
	I32 = ir.I32
	I64 = ir.I64
	Ptr = ir.Ptr
	Pad = ir.Pad
	Arr = ir.Arr
)

// Instance selectors.
var (
	Shared  = ir.Shared
	PerCPU  = ir.PerCPU
	Param   = ir.Param
	LoopVar = ir.LoopVar
)

// Layout surface.
type (
	// Layout assigns every field a byte offset.
	Layout = layout.Layout
)

// Layout producers.
var (
	// OriginalLayout returns the declaration-order layout.
	OriginalLayout = layout.Original
	// SortByHotness is the naive heuristic the paper evaluates against.
	SortByHotness = layout.SortByHotness
)

// Machine and simulator surface.
type (
	// Topology is a simulated multiprocessor.
	Topology = machine.Topology
	// Runner executes a program on a simulated machine.
	Runner = exec.Runner
	// RunConfig parameterizes a run.
	RunConfig = exec.Config
	// RunResult is everything a run produces.
	RunResult = exec.Result
	// SamplingConfig parameterizes PMU-style collection.
	SamplingConfig = sampling.Config
	// Profile is an execution profile.
	Profile = profile.Profile
	// Trace is a collected sample trace.
	Trace = sampling.Trace
	// ConcurrencyMap is the CodeConcurrency map.
	ConcurrencyMap = concurrency.Map
)

// Built-in topologies from the paper's evaluation.
var (
	Superdome128 = machine.Superdome128
	Way16        = machine.Way16
	Bus4         = machine.Bus4
	Uniprocessor = machine.Uniprocessor
)

// NewRunner builds an execution-engine runner.
func NewRunner(p *Program, cfg RunConfig) (*Runner, error) { return exec.NewRunner(p, cfg) }

// Tool surface.
type (
	// Analysis bundles collected data for the layout tool.
	Analysis = core.Analysis
	// ToolOptions configures the tool (k1/k2, line size, edge budget).
	ToolOptions = core.Options
	// Suggestion is the tool's output for one struct.
	Suggestion = core.Suggestion
)

// NewAnalysis assembles an analysis from collected data; trace may be nil
// for locality-only operation.
func NewAnalysis(p *Program, pf *Profile, trace *Trace, opts ToolOptions) (*Analysis, error) {
	return core.NewAnalysis(p, pf, trace, opts)
}

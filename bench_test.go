// Benchmark harness: one benchmark per figure of the paper's evaluation
// (§5) plus the §4.3 stability experiment and the ablations motivated in
// DESIGN.md. Heavy benchmarks report the regenerated figure values as
// custom metrics (percent speedup over the hand-tuned baseline), so
//
//	go test -bench=. -benchmem
//
// reproduces every number the paper's figures plot, in shape. The absolute
// throughputs come from the simulator; EXPERIMENTS.md records the
// paper-versus-measured comparison.
package structlayout_test

import (
	"sync"
	"testing"

	"structlayout/internal/affinity"
	"structlayout/internal/cluster"
	"structlayout/internal/concurrency"
	"structlayout/internal/experiments"
	"structlayout/internal/ir"
	"structlayout/internal/machine"
	"structlayout/internal/profile"
	"structlayout/internal/workload"
)

// benchRuns keeps the heavy figure benchmarks to a sane wall clock; the
// command-line harness (cmd/experiments) uses the paper's full 10 runs.
const benchRuns = 2

var (
	pipeOnce sync.Once
	pipe     *experiments.Pipeline
	pipeErr  error
)

func sharedPipeline(b *testing.B) *experiments.Pipeline {
	b.Helper()
	pipeOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.Runs = benchRuns
		pipe, pipeErr = experiments.NewPipeline(cfg)
	})
	if pipeErr != nil {
		b.Fatal(pipeErr)
	}
	return pipe
}

// reportRows publishes each struct's speedups as benchmark metrics.
func reportRows(b *testing.B, fig *experiments.Figure) {
	for _, row := range fig.Rows {
		for name, pct := range row.Pct {
			b.ReportMetric(pct, "pct_"+row.Label+"_"+name)
		}
	}
}

// BenchmarkFigure8 regenerates Figure 8: automatic layout and
// sort-by-hotness versus the hand-tuned baseline on the 128-way machine.
func BenchmarkFigure8(b *testing.B) {
	p := sharedPipeline(b)
	for i := 0; i < b.N; i++ {
		fig, err := p.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + fig.String())
			reportRows(b, fig)
		}
	}
}

// BenchmarkFigure9 regenerates Figure 9: the automatic layouts on the
// 4-way bus machine (marginal speedups everywhere).
func BenchmarkFigure9(b *testing.B) {
	p := sharedPipeline(b)
	for i := 0; i < b.N; i++ {
		fig, err := p.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + fig.String())
			reportRows(b, fig)
		}
	}
}

// BenchmarkFigure10 regenerates Figure 10: the best layout per struct on
// the 128-way machine (incremental for A and B, automatic for C and D).
func BenchmarkFigure10(b *testing.B) {
	p := sharedPipeline(b)
	for i := 0; i < b.N; i++ {
		fig, err := p.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + fig.String())
			reportRows(b, fig)
		}
	}
}

// BenchmarkConcurrencyStability regenerates the §4.3 observation that the
// high-CC source-line pairs are stable between the 4-way and 16-way
// collection machines.
func BenchmarkConcurrencyStability(b *testing.B) {
	p := sharedPipeline(b)
	for i := 0; i < b.N; i++ {
		res, err := p.ConcurrencyStability(20)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log(res.String())
			b.ReportMetric(res.TopOverlap*100, "overlap_pct")
			b.ReportMetric(res.RankCorrelation, "rank_corr")
		}
	}
}

// BenchmarkFigure5Affinity measures affinity-graph construction on the
// paper's Figure 4 example (the Figure 5 graph).
func BenchmarkFigure5Affinity(b *testing.B) {
	prog := ir.NewProgram("fig4")
	s := ir.NewStruct("S", ir.I64("f1"), ir.I64("f2"), ir.I64("f3"))
	prog.AddStruct(s)
	pr := prog.NewProc("snippet")
	pr.Write(s, "f1", ir.Shared(0))
	pr.Write(s, "f2", ir.Shared(0))
	pr.Loop(100, func(bd *ir.Builder) {
		bd.Write(s, "f3", ir.Shared(0))
		bd.Read(s, "f3", ir.Shared(0))
		bd.Read(s, "f1", ir.Shared(0))
		bd.Read(s, "f3", ir.Shared(0))
	})
	pr.Done()
	prog.MustFinalize()
	pf, err := profile.StaticEstimate(prog, []string{"snippet"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := affinity.Build(prog, pf, s, affinity.Options{})
		if g.Weight(0, 2) == 0 {
			b.Fatal("missing affinity edge")
		}
	}
}

// BenchmarkSDETRun measures the raw simulator: one full SDET-like run on
// each evaluation machine under baseline layouts.
func BenchmarkSDETRun(b *testing.B) {
	for _, topoFn := range []func() *machine.Topology{machine.Bus4, machine.Way16, machine.Superdome128} {
		topo := topoFn()
		b.Run(topo.Name, func(b *testing.B) {
			suite, err := workload.NewSuite(workload.DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			base := suite.BaselineLayouts(128)
			b.ResetTimer()
			var accesses uint64
			for i := 0; i < b.N; i++ {
				res, err := suite.RunOnce(topo, base, int64(i+1), nil)
				if err != nil {
					b.Fatal(err)
				}
				accesses = res.Coherence.Accesses
			}
			b.ReportMetric(float64(accesses), "mem_accesses/run")
		})
	}
}

// ---- Ablations (design choices called out in DESIGN.md) ----

// ablationAutoA builds a pipeline variant and reports auto(A)'s and
// auto(B)'s Superdome speedups under it.
func ablationAutoA(b *testing.B, mutate func(*experiments.Config)) {
	cfg := experiments.DefaultConfig()
	cfg.Runs = benchRuns
	mutate(&cfg)
	p, err := experiments.NewPipeline(cfg)
	if err != nil {
		b.Fatal(err)
	}
	topo := machine.Superdome128()
	for i := 0; i < b.N; i++ {
		base, err := p.Suite.Measure(topo, p.Baselines, cfg.Runs, cfg.BaseSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, label := range []string{"A", "B"} {
			m, err := p.Suite.Measure(topo, p.Baselines.WithLayout(label, p.Auto[label]), cfg.Runs, cfg.BaseSeed)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(m.SpeedupOver(base), "pct_"+label+"_auto")
			}
		}
	}
}

// BenchmarkAblationMinHeuristic disables the Minimum Heuristic, falling
// back to the CGO'06 plain group weights.
func BenchmarkAblationMinHeuristic(b *testing.B) {
	ablationAutoA(b, func(cfg *experiments.Config) {
		cfg.Tool.Affinity.PlainGroupWeight = true
	})
}

// BenchmarkAblationDiscountStores applies the idealized model's store
// discount to CycleGain (the implemented pipeline does not, matching
// Figure 5).
func BenchmarkAblationDiscountStores(b *testing.B) {
	ablationAutoA(b, func(cfg *experiments.Config) {
		cfg.Tool.Affinity.DiscountStores = true
	})
}

// BenchmarkAblationNoAlias drops the alias-analysis mitigation, letting
// instance-blind CodeConcurrency over-separate private fields.
func BenchmarkAblationNoAlias(b *testing.B) {
	ablationAutoA(b, func(cfg *experiments.Config) {
		cfg.Tool.FLG.AliasOracle = func(b1, b2 ir.BlockID) bool { return false }
	})
}

// BenchmarkAblationK2 sweeps the CycleLoss constant: k2=0 ignores false
// sharing entirely (locality-only), larger k2 separates more aggressively.
func BenchmarkAblationK2(b *testing.B) {
	for _, k2 := range []float64{0.25, 1, 8} {
		name := map[float64]string{0.25: "k2=0.25", 1: "k2=1", 8: "k2=8"}[k2]
		b.Run(name, func(b *testing.B) {
			ablationAutoA(b, func(cfg *experiments.Config) {
				cfg.Tool.FLG.K2 = k2
			})
		})
	}
}

// BenchmarkAblationOneClusterPerLine uses the idealized one-cluster-per-
// line packing instead of separation-aware first fit.
func BenchmarkAblationOneClusterPerLine(b *testing.B) {
	ablationAutoA(b, func(cfg *experiments.Config) {
		cfg.Tool.OneClusterPerLine = true
	})
}

// BenchmarkAblationSamplingInterval runs collection at a 10x coarser
// sampling period, starving CodeConcurrency of samples.
func BenchmarkAblationSamplingInterval(b *testing.B) {
	b.Skip("exercised via BenchmarkConcurrencyCompute variants; collection interval is fixed in workload.Collect")
}

// BenchmarkConcurrencyCompute measures the CodeConcurrency computation
// itself over a real collected trace, at the default and a coarser slice.
func BenchmarkConcurrencyCompute(b *testing.B) {
	suite, err := workload.NewSuite(workload.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	_, trace, err := suite.Collect(machine.Way16(), suite.BaselineLayouts(128), 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, slice := range []int64{workload.CollectSliceCycles, 10 * workload.CollectSliceCycles} {
		name := "slice=1x"
		if slice != workload.CollectSliceCycles {
			name = "slice=10x"
		}
		b.Run(name, func(b *testing.B) {
			var pairs int
			for i := 0; i < b.N; i++ {
				cm, err := concurrency.Compute(trace, concurrency.Options{SliceCycles: slice})
				if err != nil {
					b.Fatal(err)
				}
				pairs = len(cm.CC)
			}
			b.ReportMetric(float64(pairs), "pairs")
		})
	}
}

// BenchmarkFLGBuild measures FLG construction for struct A from collected
// data (affinity + concurrency join).
func BenchmarkFLGBuild(b *testing.B) {
	p := sharedPipeline(b)
	st := p.Suite.Struct("A").Type.Name
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := p.Analysis.BuildFLG(st)
		if err != nil {
			b.Fatal(err)
		}
		if len(g.NegativeEdges()) == 0 {
			b.Fatal("struct A must have negative edges")
		}
	}
}

// BenchmarkGreedyClustering measures the Figure 6/7 algorithm on struct A's
// >100-field FLG.
func BenchmarkGreedyClustering(b *testing.B) {
	p := sharedPipeline(b)
	g, err := p.Analysis.BuildFLG(p.Suite.Struct("A").Type.Name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := cluster.Greedy(g, 128)
		if len(res.Clusters) == 0 {
			b.Fatal("no clusters")
		}
	}
}

// BenchmarkMachineSizeSensitivity measures how the sort-by-hotness layout's
// struct-A damage grows with machine size — the paper's motivating claim
// that false-sharing cost ranges from "the order of an L2 miss" on a small
// bus machine to 1000+ cycles on a big Superdome (§1, §5).
func BenchmarkMachineSizeSensitivity(b *testing.B) {
	p := sharedPipeline(b)
	for _, topoFn := range []func() *machine.Topology{
		machine.Bus4, machine.Way16, machine.Superdome32, machine.Superdome64, machine.Superdome128,
	} {
		topo := topoFn()
		b.Run(topo.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base, err := p.Suite.Measure(topo, p.Baselines, benchRuns, p.Cfg.BaseSeed)
				if err != nil {
					b.Fatal(err)
				}
				m, err := p.Suite.Measure(topo, p.Baselines.WithLayout("A", p.Hotness["A"]), benchRuns, p.Cfg.BaseSeed)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(m.SpeedupOver(base), "pct_A_hotness")
				}
			}
		})
	}
}
